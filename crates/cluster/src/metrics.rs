//! Per-run metrics reports: one [`RunReport`] per datacenter, aggregated fleet-wide by
//! [`FleetReport`] (site vectors in site-ordinal order, mirroring the dense-grid contract).

use serde::{Deserialize, Serialize};
use simkit::events::{EventKind, EventLog};
use simkit::series::TimeSeries;
use simkit::stats::Summary;
use simkit::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Upper bucket edges (milliseconds, inclusive) of the request-fabric latency
/// histograms: log-spaced powers of two from 1 ms to ~70 simulated minutes, plus an
/// implicit overflow bucket. Fixed edges keep recorded artifacts comparable across runs
/// and trivially mergeable across sites.
pub const LATENCY_BUCKET_EDGES_MS: [u64; 23] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
    131_072, 262_144, 524_288, 1_048_576, 2_097_152, 4_194_304,
];

/// SLO multipliers at which the attainment curves are sampled. A request counts toward
/// multiplier `m` when its latency is within `m ×` the unloaded target, so each curve
/// entry is already cumulative ("attainment if the SLO were `m ×`"). The paper's
/// headline SLO (5× unloaded latency) is one of the sampled points.
pub const SLO_CURVE_MULTIPLIERS: [f64; 8] = [1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0];

/// A fixed-edge latency histogram over [`LATENCY_BUCKET_EDGES_MS`] (the last bucket is
/// the overflow bucket), plus a running sum for means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket counts: `counts[i]` holds samples `<= LATENCY_BUCKET_EDGES_MS[i]` (and
    /// greater than the previous edge); the final extra entry counts overflow samples.
    pub counts: Vec<u64>,
    /// Sum of all recorded samples (ms), for the mean.
    pub sum_ms: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { counts: vec![0; LATENCY_BUCKET_EDGES_MS.len() + 1], sum_ms: 0.0 }
    }

    /// Records one sample (milliseconds).
    pub fn record(&mut self, sample_ms: f64) {
        let bucket = LATENCY_BUCKET_EDGES_MS
            .iter()
            .position(|&edge| sample_ms <= edge as f64)
            .unwrap_or(LATENCY_BUCKET_EDGES_MS.len());
        self.counts[bucket] += 1;
        self.sum_ms += sample_ms.max(0.0);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean sample (ms), `0.0` when empty.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        let total = self.total();
        if total == 0 { 0.0 } else { self.sum_ms / total as f64 }
    }

    /// The upper bucket edge (ms) below which at least `quantile` (in `[0, 1]`) of the
    /// samples fall — a conservative percentile read off the fixed buckets. Overflow
    /// samples report the largest edge.
    #[must_use]
    pub fn quantile_edge_ms(&self, quantile: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = (quantile.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let edge = bucket.min(LATENCY_BUCKET_EDGES_MS.len() - 1);
                return LATENCY_BUCKET_EDGES_MS[edge];
            }
        }
        LATENCY_BUCKET_EDGES_MS[LATENCY_BUCKET_EDGES_MS.len() - 1]
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum_ms += other.sum_ms;
    }
}

/// Request-lifecycle accounting beside the latency histograms: arrivals, preemption and
/// eviction volume (wasted work), retry/shed/timeout outcomes and the
/// goodput-vs-throughput token split. Plain counters, merged by addition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifecycleMetrics {
    /// Requests offered to the schedulers (trace replay and generated traffic alike).
    pub arrived: u64,
    /// Sequences evicted mid-flight (a request preempted twice counts twice).
    pub preemptions: u64,
    /// KV tokens resident at eviction time (prompt + generated so far), summed.
    pub evicted_tokens: u64,
    /// Prompt tokens re-prefilled after eviction, summed.
    pub wasted_prefill_tokens: u64,
    /// Decode tokens generated and then thrown away by eviction, summed.
    pub wasted_decode_tokens: u64,
    /// Preempted requests successfully requeued for another attempt.
    pub retries: u64,
    /// Requests dropped after exhausting their retry budget (or that could never fit).
    pub timeouts: u64,
    /// Requests shed at admission because their deadline had already passed.
    pub shed: u64,
    /// Requests still queued or running when the horizon closed.
    pub in_flight_at_horizon: u64,
    /// Output tokens of every completed request (raw throughput).
    pub output_tokens: u64,
    /// Output tokens of completed requests that met the headline SLO (goodput).
    pub goodput_tokens: u64,
}

impl LifecycleMetrics {
    /// `true` when any fault-tolerance path fired (preemption, eviction, retry, timeout
    /// or shedding). Failure-free runs stay `false`, which is what gates the
    /// `lifecycle` key out of their serialized artifacts.
    #[must_use]
    pub fn has_faults(&self) -> bool {
        self.preemptions > 0
            || self.evicted_tokens > 0
            || self.wasted_prefill_tokens > 0
            || self.wasted_decode_tokens > 0
            || self.retries > 0
            || self.timeouts > 0
            || self.shed > 0
    }

    /// Goodput over throughput: the fraction of produced output tokens that also met
    /// the headline SLO. `1.0` when nothing completed.
    #[must_use]
    pub fn goodput_fraction(&self) -> f64 {
        if self.output_tokens == 0 {
            1.0
        } else {
            self.goodput_tokens as f64 / self.output_tokens as f64
        }
    }

    /// Adds another block's counters into this one.
    pub fn merge(&mut self, other: &Self) {
        self.arrived += other.arrived;
        self.preemptions += other.preemptions;
        self.evicted_tokens += other.evicted_tokens;
        self.wasted_prefill_tokens += other.wasted_prefill_tokens;
        self.wasted_decode_tokens += other.wasted_decode_tokens;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.shed += other.shed;
        self.in_flight_at_horizon += other.in_flight_at_horizon;
        self.output_tokens += other.output_tokens;
        self.goodput_tokens += other.goodput_tokens;
    }
}

/// Per-request serving metrics the request fabric records: TTFT and TBT histograms plus
/// SLO attainment curves sampled at [`SLO_CURVE_MULTIPLIERS`]. Sites merge losslessly
/// (fixed bucket edges, cumulative curve counters), which is how the fleet-level curves
/// are produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestMetrics {
    /// Requests that ran to completion.
    pub completed: u64,
    /// Time-to-first-token distribution (ms).
    pub ttft: LatencyHistogram,
    /// Mean time-between-tokens distribution (ms), over requests with 2+ output tokens.
    pub tbt: LatencyHistogram,
    /// `ttft_curve[i]` = completed requests whose TTFT was within
    /// `SLO_CURVE_MULTIPLIERS[i] ×` the unloaded TTFT target.
    pub ttft_curve: Vec<u64>,
    /// `tbt_curve[i]` = completed requests whose mean TBT was within
    /// `SLO_CURVE_MULTIPLIERS[i] ×` the unloaded TBT target.
    pub tbt_curve: Vec<u64>,
    /// `joint_curve[i]` = completed requests meeting *both* targets at multiplier `i` —
    /// the curve SLO attainment is read from.
    pub joint_curve: Vec<u64>,
    /// Request-lifecycle accounting (arrivals, preemptions, wasted work, shed/timeout
    /// outcomes, goodput split).
    pub lifecycle: LifecycleMetrics,
}

// Hand-written serde: the `lifecycle` key is emitted only when a fault-tolerance path
// actually fired. Failure-free fabric runs therefore serialize byte-identically to the
// pre-lifecycle format (the pinned golden artifact), and old artifacts deserialize with
// a default (all-zero) lifecycle block.
impl Serialize for RequestMetrics {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            (String::from("completed"), self.completed.to_value()),
            (String::from("ttft"), self.ttft.to_value()),
            (String::from("tbt"), self.tbt.to_value()),
            (String::from("ttft_curve"), self.ttft_curve.to_value()),
            (String::from("tbt_curve"), self.tbt_curve.to_value()),
            (String::from("joint_curve"), self.joint_curve.to_value()),
        ];
        if self.lifecycle.has_faults() {
            entries.push((String::from("lifecycle"), self.lifecycle.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for RequestMetrics {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            completed: Deserialize::from_value(value.get("completed")?)?,
            ttft: Deserialize::from_value(value.get("ttft")?)?,
            tbt: Deserialize::from_value(value.get("tbt")?)?,
            ttft_curve: Deserialize::from_value(value.get("ttft_curve")?)?,
            tbt_curve: Deserialize::from_value(value.get("tbt_curve")?)?,
            joint_curve: Deserialize::from_value(value.get("joint_curve")?)?,
            lifecycle: match value.get("lifecycle") {
                Ok(field) => Deserialize::from_value(field)?,
                Err(_) => LifecycleMetrics::default(),
            },
        })
    }
}

impl Default for RequestMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestMetrics {
    /// An empty metrics block.
    #[must_use]
    pub fn new() -> Self {
        Self {
            completed: 0,
            ttft: LatencyHistogram::new(),
            tbt: LatencyHistogram::new(),
            ttft_curve: vec![0; SLO_CURVE_MULTIPLIERS.len()],
            tbt_curve: vec![0; SLO_CURVE_MULTIPLIERS.len()],
            joint_curve: vec![0; SLO_CURVE_MULTIPLIERS.len()],
            lifecycle: LifecycleMetrics::default(),
        }
    }

    /// Records output tokens of one completed request into the goodput-vs-throughput
    /// split. `met_headline` is whether the request met the headline SLO multiplier.
    pub fn record_tokens(&mut self, output_tokens: u64, met_headline: bool) {
        self.lifecycle.output_tokens += output_tokens;
        if met_headline {
            self.lifecycle.goodput_tokens += output_tokens;
        }
    }

    /// Records one completed request against its endpoint's unloaded latency targets
    /// (seconds, from the perf model). Requests with a single output token have no TBT;
    /// they count as meeting any TBT multiplier.
    pub fn record(
        &mut self,
        ttft_ms: f64,
        mean_tbt_ms: f64,
        ttft_target_s: f64,
        tbt_target_s: f64,
    ) {
        self.completed += 1;
        self.ttft.record(ttft_ms);
        if mean_tbt_ms > 0.0 {
            self.tbt.record(mean_tbt_ms);
        }
        let ttft_target_ms = (ttft_target_s * 1000.0).max(f64::MIN_POSITIVE);
        let tbt_target_ms = (tbt_target_s * 1000.0).max(f64::MIN_POSITIVE);
        for (i, &multiplier) in SLO_CURVE_MULTIPLIERS.iter().enumerate() {
            let ttft_ok = ttft_ms <= multiplier * ttft_target_ms;
            let tbt_ok = mean_tbt_ms <= 0.0 || mean_tbt_ms <= multiplier * tbt_target_ms;
            if ttft_ok {
                self.ttft_curve[i] += 1;
            }
            if tbt_ok {
                self.tbt_curve[i] += 1;
            }
            if ttft_ok && tbt_ok {
                self.joint_curve[i] += 1;
            }
        }
    }

    /// SLO attainment (fraction of completed requests meeting both TTFT and TBT) at the
    /// smallest sampled multiplier `>= multiplier`; `1.0` when nothing completed.
    #[must_use]
    pub fn attainment_at(&self, multiplier: f64) -> f64 {
        if self.completed == 0 {
            return 1.0;
        }
        let index = SLO_CURVE_MULTIPLIERS
            .iter()
            .position(|&m| m >= multiplier)
            .unwrap_or(SLO_CURVE_MULTIPLIERS.len() - 1);
        self.joint_curve[index] as f64 / self.completed as f64
    }

    /// The full joint attainment curve, one fraction per [`SLO_CURVE_MULTIPLIERS`] entry.
    #[must_use]
    pub fn attainment_curve(&self) -> Vec<f64> {
        if self.completed == 0 {
            return vec![1.0; SLO_CURVE_MULTIPLIERS.len()];
        }
        self.joint_curve
            .iter()
            .map(|&count| count as f64 / self.completed as f64)
            .collect()
    }

    /// Merges another site's metrics into this one (lossless: fixed edges, counters).
    pub fn merge(&mut self, other: &Self) {
        self.completed += other.completed;
        self.ttft.merge(&other.ttft);
        self.tbt.merge(&other.tbt);
        for (mine, theirs) in self.ttft_curve.iter_mut().zip(&other.ttft_curve) {
            *mine += theirs;
        }
        for (mine, theirs) in self.tbt_curve.iter_mut().zip(&other.tbt_curve) {
            *mine += theirs;
        }
        for (mine, theirs) in self.joint_curve.iter_mut().zip(&other.joint_curve) {
            *mine += theirs;
        }
        self.lifecycle.merge(&other.lifecycle);
    }

    /// One-line textual summary (used by examples and the fabric smoke output).
    #[must_use]
    pub fn one_liner(&self) -> String {
        format!(
            "requests={} ttft_p50={}ms ttft_p99={}ms tbt_p50={}ms tbt_p99={}ms slo5x={:.4}",
            self.completed,
            self.ttft.quantile_edge_ms(0.50),
            self.ttft.quantile_edge_ms(0.99),
            self.tbt.quantile_edge_ms(0.50),
            self.tbt.quantile_edge_ms(0.99),
            self.attainment_at(5.0),
        )
    }
}

/// Everything a simulation run records.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The policy label the run used.
    pub policy: String,
    /// Simulated horizon.
    pub horizon: SimTime,
    /// Step length.
    pub step: SimDuration,
    /// Maximum GPU temperature per step (°C).
    pub max_gpu_temp: TimeSeries,
    /// Peak row power per step (kW).
    pub peak_row_power: TimeSeries,
    /// Total datacenter power per step (kW).
    pub datacenter_power: TimeSeries,
    /// Mean SaaS instance utilization per step.
    pub saas_utilization: TimeSeries,
    /// Provisioned row power budget (kW) of the most-loaded row, for normalization.
    pub row_power_budget_kw: f64,
    /// GPU throttle temperature (°C), for normalization.
    pub gpu_throttle_temp_c: f64,
    /// Events recorded during the run (throttling, capping, reconfigurations, …).
    pub events: EventLog,
    /// Per-request latency factors observed (latency relative to the unloaded latency).
    pub latency_factors: Vec<f64>,
    /// Per-request result quality observed.
    pub request_quality: Vec<f64>,
    /// Total requests served.
    pub requests_served: u64,
    /// Requests that violated their latency SLO.
    pub slo_violations: u64,
    /// Per-request serving metrics, present only when the run had the request fabric
    /// enabled (`None` keeps pre-fabric report artifacts byte-identical).
    pub request_fabric: Option<RequestMetrics>,
}

// Hand-written serde: the vendored derive writes `Option` as `null`, which would insert
// a `request_fabric` key into every report artifact and change the pinned pre-fabric
// digests — so the key is emitted only when the fabric ran, with every pre-existing
// field in declaration order exactly as the derive wrote it.
impl Serialize for RunReport {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            (String::from("policy"), self.policy.to_value()),
            (String::from("horizon"), self.horizon.to_value()),
            (String::from("step"), self.step.to_value()),
            (String::from("max_gpu_temp"), self.max_gpu_temp.to_value()),
            (String::from("peak_row_power"), self.peak_row_power.to_value()),
            (String::from("datacenter_power"), self.datacenter_power.to_value()),
            (String::from("saas_utilization"), self.saas_utilization.to_value()),
            (String::from("row_power_budget_kw"), self.row_power_budget_kw.to_value()),
            (String::from("gpu_throttle_temp_c"), self.gpu_throttle_temp_c.to_value()),
            (String::from("events"), self.events.to_value()),
            (String::from("latency_factors"), self.latency_factors.to_value()),
            (String::from("request_quality"), self.request_quality.to_value()),
            (String::from("requests_served"), self.requests_served.to_value()),
            (String::from("slo_violations"), self.slo_violations.to_value()),
        ];
        if let Some(fabric) = &self.request_fabric {
            entries.push((String::from("request_fabric"), fabric.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for RunReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            policy: Deserialize::from_value(value.get("policy")?)?,
            horizon: Deserialize::from_value(value.get("horizon")?)?,
            step: Deserialize::from_value(value.get("step")?)?,
            max_gpu_temp: Deserialize::from_value(value.get("max_gpu_temp")?)?,
            peak_row_power: Deserialize::from_value(value.get("peak_row_power")?)?,
            datacenter_power: Deserialize::from_value(value.get("datacenter_power")?)?,
            saas_utilization: Deserialize::from_value(value.get("saas_utilization")?)?,
            row_power_budget_kw: Deserialize::from_value(value.get("row_power_budget_kw")?)?,
            gpu_throttle_temp_c: Deserialize::from_value(value.get("gpu_throttle_temp_c")?)?,
            events: Deserialize::from_value(value.get("events")?)?,
            latency_factors: Deserialize::from_value(value.get("latency_factors")?)?,
            request_quality: Deserialize::from_value(value.get("request_quality")?)?,
            requests_served: Deserialize::from_value(value.get("requests_served")?)?,
            slo_violations: Deserialize::from_value(value.get("slo_violations")?)?,
            request_fabric: match value.get("request_fabric") {
                Ok(field) => Some(Deserialize::from_value(field)?),
                Err(_) => None,
            },
        })
    }
}

impl RunReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new(policy: &str, horizon: SimTime, step: SimDuration) -> Self {
        Self {
            policy: policy.to_string(),
            horizon,
            step,
            max_gpu_temp: TimeSeries::new("max GPU temperature (°C)"),
            peak_row_power: TimeSeries::new("peak row power (kW)"),
            datacenter_power: TimeSeries::new("datacenter power (kW)"),
            saas_utilization: TimeSeries::new("mean SaaS utilization"),
            row_power_budget_kw: 0.0,
            gpu_throttle_temp_c: 85.0,
            events: EventLog::new(),
            latency_factors: Vec::new(),
            request_quality: Vec::new(),
            requests_served: 0,
            slo_violations: 0,
            request_fabric: None,
        }
    }

    /// Peak of the maximum-GPU-temperature series over the whole run.
    #[must_use]
    pub fn peak_temperature_c(&self) -> f64 {
        self.max_gpu_temp.peak().unwrap_or(0.0)
    }

    /// Peak of the peak-row-power series over the whole run.
    #[must_use]
    pub fn peak_row_power_kw(&self) -> f64 {
        self.peak_row_power.peak().unwrap_or(0.0)
    }

    /// Peak row power normalized by the row budget.
    #[must_use]
    pub fn normalized_peak_power(&self) -> f64 {
        if self.row_power_budget_kw > 0.0 {
            self.peak_row_power_kw() / self.row_power_budget_kw
        } else {
            0.0
        }
    }

    /// Peak temperature normalized by the GPU throttle temperature.
    #[must_use]
    pub fn normalized_peak_temperature(&self) -> f64 {
        if self.gpu_throttle_temp_c > 0.0 {
            self.peak_temperature_c() / self.gpu_throttle_temp_c
        } else {
            0.0
        }
    }

    /// Fraction of steps during which at least one GPU was thermally throttled.
    #[must_use]
    pub fn thermal_capped_time_fraction(&self) -> f64 {
        self.events
            .fraction_of_time(EventKind::ThermalThrottle, self.horizon, self.step)
    }

    /// Fraction of steps during which at least one power-hierarchy level was capped.
    #[must_use]
    pub fn power_capped_time_fraction(&self) -> f64 {
        self.events.fraction_of_time(EventKind::PowerCap, self.horizon, self.step)
    }

    /// Largest number of SLO-violation events logged in any single step — the
    /// "worst-step SLO" robustness metric of the scenario sweep. A run can keep mean
    /// attainment high while a single emergency step craters; this catches that step.
    #[must_use]
    pub fn worst_step_slo_violations(&self) -> usize {
        let step_minutes = self.step.as_minutes().max(1);
        let mut buckets: BTreeMap<u64, usize> = BTreeMap::new();
        for event in self.events.of_kind(EventKind::SloViolation) {
            *buckets.entry(event.time.as_minutes() / step_minutes).or_insert(0) += 1;
        }
        buckets.values().copied().max().unwrap_or(0)
    }

    /// Minute of the last thermal-throttle or power-cap event, if any. The scenario
    /// sweep compares it against the scenario's last emergency window
    /// ([`crate::scenario::Scenario::last_emergency_end`]) to measure how long a policy
    /// keeps struggling after the emergency itself has passed.
    #[must_use]
    pub fn last_stress_event_minute(&self) -> Option<u64> {
        [EventKind::ThermalThrottle, EventKind::PowerCap]
            .into_iter()
            .flat_map(|kind| self.events.of_kind(kind))
            .map(|event| event.time.as_minutes())
            .max()
    }

    /// P99 of the observed latency factors (1.0 = unloaded latency; the SLO is 5.0).
    #[must_use]
    pub fn p99_latency_factor(&self) -> f64 {
        simkit::stats::percentile(&self.latency_factors, 99.0).unwrap_or(1.0)
    }

    /// Fraction of requests that met the latency SLO.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.requests_served == 0 {
            1.0
        } else {
            1.0 - self.slo_violations as f64 / self.requests_served as f64
        }
    }

    /// Mean result quality across requests (1.0 when every request hit the full-size model).
    #[must_use]
    pub fn mean_quality(&self) -> f64 {
        simkit::stats::mean(&self.request_quality).unwrap_or(1.0)
    }

    /// Summary of the maximum-temperature series.
    ///
    /// # Panics
    /// Panics if the run recorded no steps.
    #[must_use]
    pub fn temperature_summary(&self) -> Summary {
        self.max_gpu_temp.summary()
    }

    /// One-line textual summary used by the bench harnesses.
    #[must_use]
    pub fn one_liner(&self) -> String {
        format!(
            "{:<14} peak_temp={:6.1}C peak_row_power={:7.1}kW norm_power={:5.3} thermal_capped={:6.3}% power_capped={:6.3}% p99_latency={:5.2}x quality={:5.3}",
            self.policy,
            self.peak_temperature_c(),
            self.peak_row_power_kw(),
            self.normalized_peak_power(),
            self.thermal_capped_time_fraction() * 100.0,
            self.power_capped_time_fraction() * 100.0,
            self.p99_latency_factor(),
            self.mean_quality(),
        )
    }
}

/// Everything a fleet run records: one full [`RunReport`] per site plus the geo routing
/// bookkeeping, with fleet-wide aggregates derived on demand.
///
/// All per-site vectors are indexed by site ordinal (the order of
/// [`crate::experiment::FleetConfig::sites`]), so consumers can zip them against the
/// fleet configuration without any map lookups.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Label of the geo policy that split the arrivals.
    pub geo: String,
    /// Site names, by site ordinal.
    pub site_names: Vec<String>,
    /// Per-site run reports, by site ordinal.
    pub sites: Vec<RunReport>,
    /// VM arrivals routed to each site, by site ordinal.
    pub vms_routed: Vec<u64>,
    /// Arrivals steered to a healthy site while at least one site was in a power or
    /// thermal emergency.
    pub emergency_diversions: u64,
}

impl FleetReport {
    /// Number of sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total requests served fleet-wide.
    #[must_use]
    pub fn total_requests_served(&self) -> u64 {
        self.sites.iter().map(|s| s.requests_served).sum()
    }

    /// Total VM arrivals the fleet routed.
    #[must_use]
    pub fn total_vms_routed(&self) -> u64 {
        self.vms_routed.iter().sum()
    }

    /// Thermal throttle events summed over sites.
    #[must_use]
    pub fn thermal_throttle_events(&self) -> usize {
        self.sites.iter().map(|s| s.events.count(EventKind::ThermalThrottle)).sum()
    }

    /// Power capping events summed over sites.
    #[must_use]
    pub fn power_cap_events(&self) -> usize {
        self.sites.iter().map(|s| s.events.count(EventKind::PowerCap)).sum()
    }

    /// Site-minutes spent with at least one power-capped hierarchy level, summed over
    /// sites.
    #[must_use]
    pub fn power_capped_minutes(&self) -> f64 {
        self.sites
            .iter()
            .map(|s| s.power_capped_time_fraction() * s.horizon.as_minutes() as f64)
            .sum()
    }

    /// Site-minutes spent with at least one thermally throttled GPU, summed over sites.
    #[must_use]
    pub fn thermal_throttled_minutes(&self) -> f64 {
        self.sites
            .iter()
            .map(|s| s.thermal_capped_time_fraction() * s.horizon.as_minutes() as f64)
            .sum()
    }

    /// Largest number of SLO-violation events logged in any single step, fleet-wide
    /// (per-step counts sum across sites before taking the worst step).
    #[must_use]
    pub fn worst_step_slo_violations(&self) -> usize {
        let mut buckets: BTreeMap<u64, usize> = BTreeMap::new();
        for site in &self.sites {
            let step_minutes = site.step.as_minutes().max(1);
            for event in site.events.of_kind(EventKind::SloViolation) {
                *buckets.entry(event.time.as_minutes() / step_minutes).or_insert(0) += 1;
            }
        }
        buckets.values().copied().max().unwrap_or(0)
    }

    /// Minute of the last thermal-throttle or power-cap event across the fleet, if any.
    #[must_use]
    pub fn last_stress_event_minute(&self) -> Option<u64> {
        self.sites.iter().filter_map(RunReport::last_stress_event_minute).max()
    }

    /// The hottest GPU temperature any site reached.
    #[must_use]
    pub fn peak_temperature_c(&self) -> f64 {
        self.sites.iter().map(RunReport::peak_temperature_c).fold(0.0, f64::max)
    }

    /// Mean result quality across every request the fleet served.
    #[must_use]
    pub fn mean_quality(&self) -> f64 {
        let count: usize = self.sites.iter().map(|s| s.request_quality.len()).sum();
        if count == 0 {
            return 1.0;
        }
        let sum: f64 = self
            .sites
            .iter()
            .flat_map(|s| s.request_quality.iter())
            .sum();
        sum / count as f64
    }

    /// Fleet-level request-fabric metrics: the lossless merge of every site's
    /// [`RequestMetrics`] (fixed histogram edges and cumulative curve counters make the
    /// merge exact). `None` when no site ran the fabric. Fleet-wide TTFT/TBT percentile
    /// and SLO-attainment curves are read off the merged block; per-site curves stay
    /// available on each [`RunReport::request_fabric`].
    #[must_use]
    pub fn request_fabric(&self) -> Option<RequestMetrics> {
        let mut merged: Option<RequestMetrics> = None;
        for site in &self.sites {
            if let Some(metrics) = &site.request_fabric {
                merged.get_or_insert_with(RequestMetrics::new).merge(metrics);
            }
        }
        merged
    }

    /// Fraction of requests fleet-wide that met the latency SLO.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        let served = self.total_requests_served();
        if served == 0 {
            return 1.0;
        }
        let violations: u64 = self.sites.iter().map(|s| s.slo_violations).sum();
        1.0 - violations as f64 / served as f64
    }

    /// One-line textual summary used by the bench harnesses and examples.
    #[must_use]
    pub fn one_liner(&self) -> String {
        format!(
            "fleet[{}] geo={:<10} routed={:?} throttle_events={} cap_events={} capped_minutes={:.0} peak_temp={:.1}C quality={:.3}",
            self.site_count(),
            self.geo,
            self.vms_routed,
            self.thermal_throttle_events(),
            self.power_cap_events(),
            self.power_capped_minutes(),
            self.peak_temperature_c(),
            self.mean_quality(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::events::Event;

    fn report_with_data() -> RunReport {
        let mut report = RunReport::new(
            "TAPAS",
            SimTime::from_minutes(20),
            SimDuration::from_minutes(5),
        );
        report.row_power_budget_kw = 200.0;
        for i in 0..4u64 {
            let t = SimTime::from_minutes(i * 5);
            report.max_gpu_temp.push(t, 60.0 + i as f64);
            report.peak_row_power.push(t, 150.0 + i as f64 * 10.0);
            report.datacenter_power.push(t, 400.0);
            report.saas_utilization.push(t, 0.5);
        }
        report.events.record(Event {
            time: SimTime::from_minutes(5),
            kind: EventKind::ThermalThrottle,
            entity: "server-1".into(),
            magnitude: 2.0,
            detail: String::new(),
        });
        report.latency_factors = vec![1.0, 1.2, 2.0, 8.0];
        report.request_quality = vec![1.0, 1.0, 0.72, 1.0];
        report.requests_served = 4;
        report.slo_violations = 1;
        report
    }

    #[test]
    fn aggregates_are_consistent() {
        let report = report_with_data();
        assert_eq!(report.peak_temperature_c(), 63.0);
        assert_eq!(report.peak_row_power_kw(), 180.0);
        assert!((report.normalized_peak_power() - 0.9).abs() < 1e-12);
        assert!((report.normalized_peak_temperature() - 63.0 / 85.0).abs() < 1e-12);
        assert!((report.thermal_capped_time_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(report.power_capped_time_fraction(), 0.0);
        assert!((report.slo_attainment() - 0.75).abs() < 1e-12);
        assert!((report.mean_quality() - 0.93).abs() < 1e-12);
        assert!(report.p99_latency_factor() > 7.0);
        assert_eq!(report.temperature_summary().count, 4);
        let line = report.one_liner();
        assert!(line.contains("TAPAS"));
        assert!(line.contains("peak_temp"));
    }

    #[test]
    fn worst_step_slo_and_last_stress_event_bucket_the_event_log() {
        let mut report = report_with_data();
        assert_eq!(report.worst_step_slo_violations(), 0);
        assert_eq!(report.last_stress_event_minute(), Some(5));
        // Two violations in the step starting at minute 10, one at minute 15.
        for minute in [10, 12, 15] {
            report.events.record(Event {
                time: SimTime::from_minutes(minute),
                kind: EventKind::SloViolation,
                entity: "vm-1".into(),
                magnitude: 6.0,
                detail: String::new(),
            });
        }
        report.events.record(Event {
            time: SimTime::from_minutes(15),
            kind: EventKind::PowerCap,
            entity: "row-0".into(),
            magnitude: 1.1,
            detail: String::new(),
        });
        assert_eq!(report.worst_step_slo_violations(), 2);
        assert_eq!(report.last_stress_event_minute(), Some(15));

        // Fleet-wide, the per-step counts of the two identical sites add up.
        let fleet = FleetReport {
            geo: "Headroom".to_string(),
            site_names: vec!["a".to_string(), "b".to_string()],
            sites: vec![report.clone(), report],
            vms_routed: vec![1, 1],
            emergency_diversions: 0,
        };
        assert_eq!(fleet.worst_step_slo_violations(), 4);
        assert_eq!(fleet.last_stress_event_minute(), Some(15));
    }

    #[test]
    fn empty_report_defaults() {
        let report = RunReport::new("Baseline", SimTime::from_hours(1), SimDuration::from_minutes(5));
        assert_eq!(report.peak_temperature_c(), 0.0);
        assert_eq!(report.normalized_peak_power(), 0.0);
        assert_eq!(report.slo_attainment(), 1.0);
        assert_eq!(report.mean_quality(), 1.0);
        assert_eq!(report.p99_latency_factor(), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let report = report_with_data();
        let json = serde_json::to_string(&report).unwrap();
        assert!(
            !json.contains("request_fabric"),
            "fabric-less reports must not grow a fabric key"
        );
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.policy, report.policy);
        assert_eq!(back.requests_served, report.requests_served);
        assert_eq!(back.request_fabric, None);
    }

    #[test]
    fn request_metrics_histograms_curves_and_merge() {
        let mut metrics = RequestMetrics::new();
        // Targets: TTFT 100 ms, TBT 10 ms. A fast, a mid and a slow request.
        metrics.record(80.0, 9.0, 0.1, 0.01);
        metrics.record(250.0, 18.0, 0.1, 0.01);
        metrics.record(2500.0, 300.0, 0.1, 0.01);
        assert_eq!(metrics.completed, 3);
        assert_eq!(metrics.ttft.total(), 3);
        assert!((metrics.ttft.mean_ms() - (80.0 + 250.0 + 2500.0) / 3.0).abs() < 1e-9);
        // At 1x only the fast request qualifies; at 3x the mid one joins; the slow one
        // (25x TTFT, 30x TBT) is outside even the 20x tail.
        let curve = metrics.attainment_curve();
        assert!((curve[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((metrics.attainment_at(3.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((metrics.attainment_at(5.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((metrics.attainment_at(20.0) - 2.0 / 3.0).abs() < 1e-12);
        // Percentiles read conservative bucket edges.
        assert_eq!(metrics.ttft.quantile_edge_ms(0.5), 256);
        assert_eq!(metrics.ttft.quantile_edge_ms(0.99), 4096);
        // Single-token requests have no TBT and meet any TBT multiplier.
        let mut single = RequestMetrics::new();
        single.record(80.0, 0.0, 0.1, 0.01);
        assert_eq!(single.tbt.total(), 0);
        assert!((single.attainment_at(1.0) - 1.0).abs() < 1e-12);
        // Merge is lossless counter addition.
        let mut merged = metrics.clone();
        merged.merge(&single);
        assert_eq!(merged.completed, 4);
        assert_eq!(merged.joint_curve[0], 2);
        assert!(merged.one_liner().contains("requests=4"));
        // Empty metrics default to full attainment.
        assert!((RequestMetrics::new().attainment_at(5.0) - 1.0).abs() < 1e-12);
        assert_eq!(RequestMetrics::new().ttft.quantile_edge_ms(0.99), 0);
    }

    #[test]
    fn lifecycle_block_is_gated_on_fault_activity_and_merges_losslessly() {
        let mut metrics = RequestMetrics::new();
        metrics.record(80.0, 9.0, 0.1, 0.01);
        metrics.lifecycle.arrived = 5;
        metrics.lifecycle.in_flight_at_horizon = 4;
        metrics.record_tokens(120, true);
        // Arrivals, in-flight and token counters alone never emit the key: they are
        // non-zero in failure-free runs, whose artifacts must stay byte-identical.
        assert!(!metrics.lifecycle.has_faults());
        let json = serde_json::to_string(&metrics).unwrap();
        assert!(!json.contains("lifecycle"), "{json}");
        let back: RequestMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lifecycle, LifecycleMetrics::default());
        assert_eq!(serde_json::to_string(&back).unwrap(), json);

        // Any fault counter flips the gate and the block round-trips losslessly.
        metrics.lifecycle.preemptions = 2;
        metrics.lifecycle.evicted_tokens = 900;
        metrics.lifecycle.wasted_prefill_tokens = 800;
        metrics.lifecycle.wasted_decode_tokens = 100;
        metrics.lifecycle.retries = 1;
        metrics.lifecycle.timeouts = 1;
        metrics.lifecycle.shed = 3;
        metrics.record_tokens(40, false);
        assert!(metrics.lifecycle.has_faults());
        let json = serde_json::to_string(&metrics).unwrap();
        assert!(json.contains("\"lifecycle\":{\"arrived\":5,"), "{json}");
        let back: RequestMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, metrics);
        assert!((back.lifecycle.goodput_fraction() - 120.0 / 160.0).abs() < 1e-12);

        // Site merge adds every lifecycle counter.
        let mut merged = metrics.clone();
        merged.merge(&metrics);
        assert_eq!(merged.lifecycle.arrived, 10);
        assert_eq!(merged.lifecycle.preemptions, 4);
        assert_eq!(merged.lifecycle.shed, 6);
        assert_eq!(merged.lifecycle.output_tokens, 320);
        assert_eq!(merged.lifecycle.goodput_tokens, 240);
        // Empty lifecycle reads as perfect goodput.
        assert!((LifecycleMetrics::default().goodput_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fabric_reports_round_trip_and_aggregate_fleet_wide() {
        let mut report = report_with_data();
        let mut metrics = RequestMetrics::new();
        metrics.record(120.0, 12.0, 0.1, 0.01);
        report.request_fabric = Some(metrics.clone());
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"request_fabric\":{"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.request_fabric, Some(metrics.clone()));

        // Fleet aggregation merges only the sites that ran the fabric.
        let fleet = FleetReport {
            geo: "Headroom".to_string(),
            site_names: vec!["a".to_string(), "b".to_string()],
            sites: vec![report, report_with_data()],
            vms_routed: vec![1, 1],
            emergency_diversions: 0,
        };
        let merged = fleet.request_fabric().expect("one site ran the fabric");
        assert_eq!(merged.completed, 1);
        assert_eq!(
            FleetReport {
                geo: String::new(),
                site_names: Vec::new(),
                sites: vec![report_with_data()],
                vms_routed: Vec::new(),
                emergency_diversions: 0,
            }
            .request_fabric(),
            None
        );
    }

    #[test]
    fn fleet_report_aggregates_across_sites() {
        let fleet = FleetReport {
            geo: "Headroom".to_string(),
            site_names: vec!["site0-hot".to_string(), "site1-cold".to_string()],
            sites: vec![report_with_data(), report_with_data()],
            vms_routed: vec![3, 5],
            emergency_diversions: 2,
        };
        assert_eq!(fleet.site_count(), 2);
        assert_eq!(fleet.total_requests_served(), 8);
        assert_eq!(fleet.total_vms_routed(), 8);
        assert_eq!(fleet.thermal_throttle_events(), 2);
        assert_eq!(fleet.power_cap_events(), 0);
        // Each site: 25 % of a 20-minute horizon throttled -> 5 site-minutes, 10 fleet-wide.
        assert!((fleet.thermal_throttled_minutes() - 10.0).abs() < 1e-9);
        assert_eq!(fleet.power_capped_minutes(), 0.0);
        assert_eq!(fleet.peak_temperature_c(), 63.0);
        assert!((fleet.mean_quality() - 0.93).abs() < 1e-12);
        assert!((fleet.slo_attainment() - 0.75).abs() < 1e-12);
        let line = fleet.one_liner();
        assert!(line.contains("fleet[2]") && line.contains("Headroom"));

        let json = serde_json::to_string(&fleet).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.site_names, fleet.site_names);
        assert_eq!(back.vms_routed, fleet.vms_routed);
        assert_eq!(back.emergency_diversions, 2);
    }
}
