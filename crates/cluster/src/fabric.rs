//! The request fabric: a fleet-wide, event-timestamped inference-request stream.
//!
//! The simulator's legacy serving path is *quantum-based*: each step synthesizes a demand
//! rate per endpoint and routes aggregate quanta (see
//! [`crate::simulator::ClusterSimulator`]). That reproduces the paper's thermal/power
//! results, but it cannot answer per-request questions — time-to-first-token and
//! time-between-tokens distributions, SLO attainment *curves*, KV-cache pressure. The
//! fabric adds that missing request level as an opt-in overlay
//! ([`crate::experiment::ExperimentConfig::request_fabric`]):
//!
//! 1. **Generation** ([`FabricGenerator`]) — per endpoint, a Poisson request count per
//!    step (diurnal rate × scenario demand shaping × `rate_scale`), each request stamped
//!    with an integer-*millisecond* event time uniform within the step and a log-normal
//!    prompt/output shape (the [`workload`] request-shape calibration). Draws come from
//!    RNG streams derived under the `"request-fabric"` label, so enabling the fabric
//!    never perturbs the legacy per-step draws — fabric-off runs stay byte-identical.
//! 2. **Ordering** ([`simkit::queue::EventQueue`]) — requests are delivered in
//!    `(time, push-order)` order: a dense binary heap over integer timestamps with a
//!    monotone sequence number breaking ties FIFO, so replay is deterministic for
//!    millions of events without any per-event allocation.
//! 3. **Serving** ([`RequestFabric`]) — per endpoint, an aggregate continuous-batching
//!    scheduler ([`llm_sim::batch::BatchScheduler`]) whose replica count tracks the
//!    endpoint's placed instances and whose admission is bounded by KV-cache occupancy
//!    (prompt pinned at admission, +1 token per sequence per decode iteration, eviction
//!    on completion). Completions feed [`crate::metrics::RequestMetrics`]: TTFT/TBT
//!    histograms and SLO-multiplier attainment curves against the endpoint's *unloaded*
//!    analytic latencies (the paper's SLO sits at the 5× point of that curve).
//!
//! A fleet routes the generated stream per-request across sites
//! ([`tapas::geo::GeoPlacement::choose_request`]) before cells step, then delivers into
//! per-cell inboxes — cells never generate their own fabric traffic, so serial and
//! `parallel` fleet execution see identical event sequences.

use crate::experiment::RequestFabricConfig;
use crate::metrics::RequestMetrics;
use crate::scenario::ResolvedTimeline;
use llm_sim::batch::{BatchCompletion, BatchScheduler, SchedulerFaults};
use llm_sim::hardware::GpuHardware;
use llm_sim::perf::PerfModel;
use llm_sim::request::RequestShape;
use simkit::queue::EventQueue;
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};
use workload::diurnal::DiurnalPattern;
use workload::endpoints::EndpointCatalog;
use workload::trace::{TraceError, TraceRecord};

/// Milliseconds per simulated minute (the fabric's event clock is integer ms; the
/// simulator's step clock is integer minutes).
pub const MS_PER_MINUTE: u64 = 60_000;

/// One inference request travelling through the fabric. The arrival timestamp lives in
/// the event queue's key, not here, so the payload stays a single machine word pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricRequest {
    /// Fleet-unique request id (generation order, or trace line for replays).
    pub id: u64,
    /// Target endpoint ordinal.
    pub endpoint: u32,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Output length in tokens.
    pub output_tokens: u32,
}

/// Per-endpoint generation state.
#[derive(Debug, Clone)]
struct GeneratorEndpoint {
    /// Peak aggregate request rate (requests/minute) at the top of the diurnal cycle.
    peak_requests_per_minute: f64,
    /// The endpoint's diurnal load pattern (identical construction to the simulator's,
    /// from an independent clone of the derived pattern stream).
    pattern: DiurnalPattern,
    /// Dedicated per-endpoint draw stream (child of the `"request-fabric"` stream).
    rng: SimRng,
}

/// Generates the fabric's event-timestamped request stream, one Poisson batch per
/// endpoint per step, each request offset uniformly within the step in milliseconds.
#[derive(Debug, Clone)]
pub struct FabricGenerator {
    config: RequestFabricConfig,
    shape: RequestShape,
    endpoints: Vec<GeneratorEndpoint>,
    next_id: u64,
}

impl FabricGenerator {
    /// Builds a generator for a catalog. All draws derive from `seed` under the
    /// `"request-fabric"` label (one child stream per endpoint), so the legacy
    /// simulation streams never observe the fabric's consumption.
    #[must_use]
    pub fn new(seed: u64, catalog: &EndpointCatalog, config: RequestFabricConfig) -> Self {
        // The diurnal patterns replicate the simulator's construction exactly (same
        // derivation label, same draw order) so the fabric's demand curve is in phase
        // with the quantum-based path driving the physics.
        let mut pattern_rng = SimRng::seed_from(seed).derive("endpoint-patterns");
        let fabric_root = SimRng::seed_from(seed).derive("request-fabric");
        let endpoints = catalog
            .endpoints()
            .iter()
            .map(|endpoint| GeneratorEndpoint {
                peak_requests_per_minute: endpoint.peak_requests_per_minute,
                pattern: DiurnalPattern::interactive(seed ^ endpoint.id.0)
                    .with_peak_hour(pattern_rng.uniform(10.0, 20.0)),
                rng: fabric_root.derive(&format!("endpoint-{}", endpoint.id.0)),
            })
            .collect();
        Self { config, shape: RequestShape::default(), endpoints, next_id: 0 }
    }

    /// Requests generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Pushes the step's requests (arrivals in `[now, now + step)`, millisecond
    /// timestamps) into `queue`. The scenario timeline's demand shaping multiplies the
    /// diurnal rate exactly as it does on the legacy serving path.
    pub fn generate_step(
        &mut self,
        now: SimTime,
        step: SimDuration,
        timeline: &ResolvedTimeline,
        queue: &mut EventQueue<FabricRequest>,
    ) {
        let step_minutes = step.as_minutes();
        let step_ms = step_minutes * MS_PER_MINUTE;
        let start_ms = now.as_minutes() * MS_PER_MINUTE;
        for (ordinal, endpoint) in self.endpoints.iter_mut().enumerate() {
            let id = workload::endpoints::EndpointId(ordinal as u64);
            let rate_per_minute = endpoint.peak_requests_per_minute
                * endpoint.pattern.load_at(now)
                * timeline.demand_scale_at(now, id)
                * self.config.rate_scale;
            let mean = rate_per_minute * step_minutes as f64;
            if mean <= 0.0 {
                continue;
            }
            let count = endpoint.rng.poisson(mean);
            for _ in 0..count {
                let offset_ms = endpoint.rng.uniform_usize(0, step_ms as usize) as u64;
                let prompt = endpoint
                    .rng
                    .log_normal(self.shape.median_prompt_tokens.ln(), self.shape.prompt_sigma)
                    .round()
                    .max(1.0) as usize;
                let output = endpoint
                    .rng
                    .log_normal(self.shape.median_output_tokens.ln(), self.shape.output_sigma)
                    .round()
                    .max(1.0) as usize;
                let (prompt, output) = clamp_total(prompt, output, self.shape.max_total_tokens);
                queue.push(
                    start_ms + offset_ms,
                    FabricRequest {
                        id: self.next_id,
                        endpoint: ordinal as u32,
                        prompt_tokens: prompt as u32,
                        output_tokens: output as u32,
                    },
                );
                self.next_id += 1;
            }
        }
    }
}

/// Scales `(prompt, output)` down proportionally if their sum exceeds `max_total` (the
/// same truncation [`workload`]'s request generator applies).
fn clamp_total(prompt: usize, output: usize, max_total: usize) -> (usize, usize) {
    let total = prompt + output;
    if total <= max_total || total == 0 {
        return (prompt, output);
    }
    let scale = max_total as f64 / total as f64;
    let prompt = ((prompt as f64 * scale).floor() as usize).max(1);
    let output = (max_total - prompt).max(1);
    (prompt, output)
}

/// One site's serving side of the request fabric: the inbox event queue, one batch
/// scheduler per endpoint, and the per-request metrics block.
#[derive(Debug, Clone)]
pub struct RequestFabric {
    /// Self-generating mode (single-datacenter runs). Fleet cells leave this `None` and
    /// receive their stream through [`RequestFabric::deliver`].
    generator: Option<FabricGenerator>,
    queue: EventQueue<FabricRequest>,
    schedulers: Vec<BatchScheduler>,
    /// Unloaded analytic `(TTFT, TBT)` targets in seconds per endpoint — the `1×` point
    /// of the SLO attainment curves.
    targets: Vec<(f64, f64)>,
    /// Last step's KV/backlog pressure per endpoint, blended into the endpoint pool's
    /// demand pressure by the simulator.
    pressures: Vec<f64>,
    metrics: RequestMetrics,
    slo_multiplier: f64,
    /// Scratch for completions drained per endpoint per step.
    completions: Vec<BatchCompletion>,
    /// Scratch: each scheduler's fault counters at the start of the current step, to
    /// convert lifetime counters into this-window deltas for the pressure signal.
    fault_marks: Vec<SchedulerFaults>,
}

impl RequestFabric {
    /// Builds the serving fabric for a site. `generate` wires in a local
    /// [`FabricGenerator`] (single-datacenter mode); fleet cells pass `false` and get
    /// their stream delivered by the fleet loop.
    #[must_use]
    pub fn new(
        seed: u64,
        catalog: &EndpointCatalog,
        config: RequestFabricConfig,
        generate: bool,
    ) -> Self {
        let gpu = GpuHardware::a100();
        let perf = PerfModel::new(gpu);
        let targets: Vec<(f64, f64)> = catalog
            .endpoints()
            .iter()
            .map(|endpoint| {
                (
                    perf.ttft_unloaded_s(&endpoint.default_config),
                    perf.tbt_unloaded_s(&endpoint.default_config),
                )
            })
            .collect();
        let schedulers: Vec<BatchScheduler> = catalog
            .endpoints()
            .iter()
            .zip(&targets)
            .map(|(endpoint, &(ttft_target_s, _))| {
                let mut scheduler = BatchScheduler::new(endpoint.default_config, &gpu, 1);
                // Deadline shedding is opt-in: the per-endpoint admission deadline is
                // the headline SLO on the unloaded TTFT — a request that cannot start
                // inside it has already blown its TTFT SLO, so serving it only burns
                // KV budget the on-time queue needs.
                let shed_deadline_ms = if config.deadline_shedding {
                    ((config.slo_multiplier * ttft_target_s * 1000.0).ceil() as u64).max(1)
                } else {
                    0
                };
                scheduler.set_fault_policy(
                    shed_deadline_ms,
                    config.max_retries,
                    config.backoff_base_ms,
                );
                scheduler
            })
            .collect();
        Self {
            generator: generate.then(|| FabricGenerator::new(seed, catalog, config)),
            queue: EventQueue::new(),
            pressures: vec![0.0; schedulers.len()],
            schedulers,
            targets,
            metrics: RequestMetrics::new(),
            slo_multiplier: config.slo_multiplier,
            completions: Vec::new(),
            fault_marks: Vec::new(),
        }
    }

    /// Preloads a parsed request trace as the fabric's stream (replay mode). Fails with
    /// [`TraceError::UnknownEndpoint`] if a record names an endpoint outside the
    /// catalog, before anything is enqueued.
    ///
    /// # Errors
    /// Returns the first out-of-catalog endpoint as a typed error.
    pub fn load_trace(&mut self, records: &[TraceRecord]) -> Result<(), TraceError> {
        let endpoints = self.schedulers.len() as u64;
        if let Some(bad) = records.iter().find(|r| r.endpoint >= endpoints) {
            return Err(TraceError::UnknownEndpoint { endpoint: bad.endpoint });
        }
        for (line, record) in records.iter().enumerate() {
            self.queue.push(
                record.timestamp_ms,
                FabricRequest {
                    id: line as u64,
                    endpoint: record.endpoint as u32,
                    prompt_tokens: record.prompt_tokens,
                    output_tokens: record.output_tokens,
                },
            );
        }
        Ok(())
    }

    /// Delivers one fleet-routed request into the site's inbox.
    pub fn deliver(&mut self, time_ms: u64, request: FabricRequest) {
        self.queue.push(time_ms, request);
    }

    /// Generates the step's local stream (no-op for fleet cells, which have no
    /// generator — their stream arrives through [`RequestFabric::deliver`]).
    pub fn generate_step(
        &mut self,
        now: SimTime,
        step: SimDuration,
        timeline: &ResolvedTimeline,
    ) {
        if let Some(generator) = self.generator.as_mut() {
            generator.generate_step(now, step, timeline, &mut self.queue);
        }
    }

    /// Serves the step: drains arrivals due in `[now, now + step)` into the per-endpoint
    /// schedulers (in global timestamp order), advances every scheduler to the step end,
    /// records completions against the endpoint's unloaded targets, and refreshes the
    /// per-endpoint pressure signals. `replicas[e]` is endpoint `e`'s currently placed
    /// instance count (zero keeps the scheduler at one virtual replica so traffic to an
    /// unplaced endpoint queues instead of vanishing).
    pub fn serve_step(&mut self, now: SimTime, step: SimDuration, replicas: &[u32]) {
        let end_ms = (now.as_minutes() + step.as_minutes()) * MS_PER_MINUTE;
        self.fault_marks.clear();
        for (ordinal, scheduler) in self.schedulers.iter_mut().enumerate() {
            let count = replicas.get(ordinal).copied().unwrap_or(0);
            // Mark fault counters before the resize: a shrink below the KV commitment
            // or the surviving decode slots preempts immediately, and those preemptions
            // belong to this window's distress signal.
            self.fault_marks.push(scheduler.faults());
            scheduler.set_replicas(count.max(1) as usize);
        }
        let schedulers = &mut self.schedulers;
        let lifecycle = &mut self.metrics.lifecycle;
        self.queue.drain_until(end_ms - 1, |time_ms, request| {
            if let Some(scheduler) = schedulers.get_mut(request.endpoint as usize) {
                lifecycle.arrived += 1;
                scheduler.offer(
                    request.id,
                    request.prompt_tokens as usize,
                    request.output_tokens as usize,
                    time_ms,
                );
            }
        });
        let headline = self.slo_multiplier;
        for ordinal in 0..self.schedulers.len() {
            self.completions.clear();
            self.schedulers[ordinal].advance_to(end_ms, &mut self.completions);
            let (ttft_target_s, tbt_target_s) = self.targets[ordinal];
            for done in &self.completions {
                let ttft_ms = done.ttft_ms() as f64;
                let tbt_ms = done.mean_tbt_ms();
                self.metrics.record(ttft_ms, tbt_ms, ttft_target_s, tbt_target_s);
                let met_headline = ttft_ms <= headline * ttft_target_s * 1000.0
                    && (tbt_ms <= 0.0 || tbt_ms <= headline * tbt_target_s * 1000.0);
                self.metrics.record_tokens(done.output_tokens as u64, met_headline);
            }
            self.schedulers[ordinal].note_pressure_window();
            // KV/backlog pressure alone under-reports saturation once deadline shedding
            // is active: sheds keep the queue short, so occupancy looks healthy while
            // requests are being sacrificed. Fold this window's lifecycle distress
            // (sheds + preemptions, as a fraction of the window's outcomes) into the
            // signal so saturation stays visible — past 1.0, fleet request routing
            // diverts new arrivals away from the site. Failure-free windows have zero
            // distress, leaving the legacy signal untouched.
            let mark = self.fault_marks[ordinal];
            let faults = self.schedulers[ordinal].faults();
            let lost = (faults.shed - mark.shed) + (faults.preemptions - mark.preemptions);
            let mut pressure = self.schedulers[ordinal].pressure();
            if lost > 0 {
                let outcomes = lost + self.completions.len() as u64;
                let distress = lost as f64 / outcomes as f64;
                pressure = pressure.max(1.0 + distress.min(0.5));
            }
            self.pressures[ordinal] = pressure;
        }
    }

    /// Endpoint `e`'s KV/backlog pressure after the last served step (`0.0` for unknown
    /// ordinals).
    #[must_use]
    pub fn pressure(&self, endpoint: usize) -> f64 {
        self.pressures.get(endpoint).copied().unwrap_or(0.0)
    }

    /// The metrics recorded so far.
    #[must_use]
    pub fn metrics(&self) -> &RequestMetrics {
        &self.metrics
    }

    /// The headline SLO multiplier attainment is quoted at.
    #[must_use]
    pub fn slo_multiplier(&self) -> f64 {
        self.slo_multiplier
    }

    /// Takes the metrics block out of the fabric (end-of-run report assembly),
    /// folding every scheduler's fault counters into the lifecycle block first.
    /// Requests still queued or mid-decode at the horizon have no latency sample
    /// but are counted in `lifecycle.in_flight_at_horizon`, so the conservation
    /// identity `arrived == completed + timeouts + shed + in_flight_at_horizon`
    /// holds exactly.
    #[must_use]
    pub fn take_metrics(&mut self) -> RequestMetrics {
        for scheduler in &self.schedulers {
            let faults = scheduler.faults();
            let lifecycle = &mut self.metrics.lifecycle;
            lifecycle.preemptions += faults.preemptions;
            lifecycle.evicted_tokens += faults.evicted_tokens;
            lifecycle.wasted_prefill_tokens += faults.wasted_prefill_tokens;
            lifecycle.wasted_decode_tokens += faults.wasted_decode_tokens;
            lifecycle.retries += faults.retries;
            lifecycle.timeouts += faults.timeouts;
            lifecycle.shed += faults.shed;
            lifecycle.in_flight_at_horizon +=
                (scheduler.queue_len() + scheduler.running_len()) as u64;
        }
        std::mem::take(&mut self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;

    fn catalog() -> EndpointCatalog {
        ExperimentConfig::small_smoke_test().endpoint_catalog()
    }

    fn timeline() -> ResolvedTimeline {
        ExperimentConfig::small_smoke_test().resolved_timeline()
    }

    #[test]
    fn generator_is_deterministic_and_stays_inside_the_step_window() {
        let run = || {
            let mut generator =
                FabricGenerator::new(42, &catalog(), RequestFabricConfig::default());
            let mut queue = EventQueue::new();
            let timeline = timeline();
            for minute in [0u64, 5, 10] {
                generator.generate_step(
                    SimTime::from_minutes(minute),
                    SimDuration::from_minutes(5),
                    &timeline,
                    &mut queue,
                );
            }
            let mut events = Vec::new();
            queue.drain_until(u64::MAX, |t, r| events.push((t, r)));
            events
        };
        let events = run();
        assert!(!events.is_empty(), "the smoke catalog generates traffic");
        assert!(events.windows(2).all(|p| p[0].0 <= p[1].0), "drained in time order");
        assert!(events.iter().all(|(t, _)| *t < 15 * MS_PER_MINUTE));
        assert!(events.iter().all(|(_, r)| {
            let total = r.prompt_tokens as usize + r.output_tokens as usize;
            r.prompt_tokens >= 1 && r.output_tokens >= 1 && total <= 8192
        }));
        // Ids are the queue's FIFO tie-break witness: same-run regeneration is identical.
        assert_eq!(events, run());
    }

    #[test]
    fn rate_scale_scales_the_generated_volume() {
        let volume = |scale: f64| {
            let mut generator = FabricGenerator::new(
                42,
                &catalog(),
                RequestFabricConfig { rate_scale: scale, ..RequestFabricConfig::default() },
            );
            let mut queue = EventQueue::new();
            let timeline = timeline();
            for minute in (0..120).step_by(5) {
                generator.generate_step(
                    SimTime::from_minutes(minute),
                    SimDuration::from_minutes(5),
                    &timeline,
                    &mut queue,
                );
            }
            generator.generated()
        };
        let base = volume(1.0);
        let scaled = volume(3.0);
        assert!(base > 0);
        assert!(
            scaled as f64 > base as f64 * 2.0,
            "3x rate scale must roughly triple volume: {base} -> {scaled}"
        );
    }

    #[test]
    fn fabric_serves_generated_traffic_and_records_metrics() {
        let catalog = catalog();
        let timeline = timeline();
        let mut fabric =
            RequestFabric::new(42, &catalog, RequestFabricConfig::default(), true);
        let replicas = vec![2u32; catalog.len()];
        for minute in (0..120).step_by(5) {
            let now = SimTime::from_minutes(minute);
            let step = SimDuration::from_minutes(5);
            fabric.generate_step(now, step, &timeline);
            fabric.serve_step(now, step, &replicas);
        }
        let metrics = fabric.metrics();
        assert!(metrics.completed > 0, "two hours of traffic must complete requests");
        assert!(metrics.ttft.total() == metrics.completed);
        assert!(metrics.attainment_at(5.0) > 0.0);
        assert!((0..catalog.len()).any(|e| fabric.pressure(e) > 0.0));
    }

    #[test]
    fn trace_replay_validates_endpoints_before_enqueueing() {
        let catalog = catalog();
        let mut fabric =
            RequestFabric::new(42, &catalog, RequestFabricConfig::default(), false);
        let bad = vec![TraceRecord {
            timestamp_ms: 0,
            endpoint: catalog.len() as u64 + 5,
            prompt_tokens: 128,
            output_tokens: 16,
        }];
        assert_eq!(
            fabric.load_trace(&bad),
            Err(TraceError::UnknownEndpoint { endpoint: catalog.len() as u64 + 5 })
        );
        let good = vec![
            TraceRecord { timestamp_ms: 0, endpoint: 0, prompt_tokens: 128, output_tokens: 16 },
            TraceRecord { timestamp_ms: 900, endpoint: 1, prompt_tokens: 64, output_tokens: 8 },
        ];
        fabric.load_trace(&good).expect("in-catalog endpoints load");
        fabric.serve_step(SimTime::ZERO, SimDuration::from_minutes(5), &[1, 1]);
        assert_eq!(fabric.metrics().completed, 2);
    }
}
