//! The discrete-time cluster simulation loop.
//!
//! One step (1–10 simulated minutes) performs, in order: VM retirements and placements,
//! endpoint request routing, instance reconfiguration, IaaS load replay, datacenter physics
//! evaluation (temperatures, powers, airflow, capping), metric recording, and carry-over of
//! throttling/capping effects into the next step — the same control structure the paper's
//! simulator uses (§5.1).

use crate::experiment::ExperimentConfig;
use crate::metrics::RunReport;
use dc_sim::engine::{Datacenter, ServerActivity, StepInput};
use dc_sim::ids::{AisleId, RowId};
use dc_sim::weather::WeatherModel;
use llm_sim::config::InstanceConfig;
use llm_sim::hardware::GpuHardware;
use llm_sim::request::{CustomerId, InferenceRequest, RequestId};
use simkit::events::EventKind;
use simkit::rng::SimRng;
use simkit::time::{SimClock, SimTime};
use simkit::units::{Celsius, CubicFeetPerMinute, Kilowatts, Watts};
use std::collections::{BTreeMap, VecDeque};
use tapas::configurator::{InstanceConfigurator, InstanceLimits};
use tapas::placement::{BaselinePlacement, PlacementRequest, TapasPlacement, VmPlacementPolicy};
use tapas::profiles::ProfileStore;
use tapas::routing::{
    BaselineRouter, InstanceSnapshot, RequestRouterPolicy, RoutingContext, TapasRouter,
};
use tapas::state::ClusterState;
use workload::arrivals::{ArrivalConfig, VmArrivalGenerator};
use workload::diurnal::DiurnalPattern;
use workload::endpoints::{EndpointCatalog, EndpointId};
use workload::iaas::IaasLoadModel;
use workload::vm::{Vm, VmId, VmKind};

/// Mean tokens processed per request (prompt + output) used to convert request rates into
/// token throughput demands.
const MEAN_TOKENS_PER_REQUEST: f64 = 712.0;
/// Latency factor assigned to requests on an overloaded instance.
const OVERLOAD_LATENCY_FACTOR: f64 = 12.0;
/// The SLO expressed as a latency factor over the unloaded latency.
const SLO_LATENCY_FACTOR: f64 = 5.0;

/// Runtime state of one SaaS instance.
#[derive(Debug, Clone)]
struct InstanceRuntime {
    endpoint: EndpointId,
    config: InstanceConfig,
    utilization: f64,
    outstanding: usize,
    recent_customers: VecDeque<CustomerId>,
    transition_until: Option<SimTime>,
}

/// The end-to-end cluster simulator.
#[derive(Debug)]
pub struct ClusterSimulator {
    config: ExperimentConfig,
    dc: Datacenter,
    profiles: ProfileStore,
    state: ClusterState,
    weather: WeatherModel,
    catalog: EndpointCatalog,
    iaas_model: IaasLoadModel,
    endpoint_patterns: BTreeMap<EndpointId, DiurnalPattern>,
    pending: VecDeque<Vm>,
    instances: BTreeMap<VmId, InstanceRuntime>,
    carryover_freq: Vec<f64>,
    prev_row_power: BTreeMap<RowId, Kilowatts>,
    prev_aisle_airflow: BTreeMap<AisleId, CubicFeetPerMinute>,
    prev_dc_load: f64,
    row_history: BTreeMap<RowId, Vec<(SimTime, f64)>>,
    last_refinement: SimTime,
    rng: SimRng,
    next_request_id: u64,
    report: RunReport,
}

impl ClusterSimulator {
    /// Builds a simulator for an experiment configuration.
    #[must_use]
    pub fn new(config: ExperimentConfig) -> Self {
        let layout = config.layout.build();
        let dc = Datacenter::new(layout, config.seed);
        let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
        let state = ClusterState::new(dc.layout().server_count());
        let weather = WeatherModel::new(config.climate, config.seed);

        let saas_target =
            (config.server_count() as f64 * config.initial_occupancy * config.saas_fraction)
                .round() as usize;
        let catalog = EndpointCatalog::evaluation(
            config.endpoint_count.max(1),
            config.requests_per_vm_per_minute,
            config.seed,
        )
        .scaled_to_total_vms(saas_target.max(config.endpoint_count.max(1)));

        let mut arrival_config = ArrivalConfig::evaluation_week(config.server_count());
        arrival_config.saas_fraction = config.saas_fraction;
        arrival_config.initial_population =
            (config.server_count() as f64 * config.initial_occupancy).round() as usize;
        arrival_config.horizon = config.duration;
        let mut generator = VmArrivalGenerator::new(arrival_config, config.seed);
        let pending: VecDeque<Vm> = generator.generate(&catalog).into();

        let iaas_model = IaasLoadModel::new(12, config.seed);
        let mut pattern_rng = SimRng::seed_from(config.seed).derive("endpoint-patterns");
        let endpoint_patterns = catalog
            .endpoints()
            .iter()
            .map(|e| {
                (
                    e.id,
                    DiurnalPattern::interactive(config.seed ^ e.id.0)
                        .with_peak_hour(pattern_rng.uniform(10.0, 20.0)),
                )
            })
            .collect();

        let mut report = RunReport::new(config.policy.label(), config.duration, config.step);
        report.row_power_budget_kw = dc
            .layout()
            .rows()
            .iter()
            .map(|r| r.power_budget.value())
            .fold(0.0, f64::max);
        report.gpu_throttle_temp_c = dc.layout().servers()[0].spec.gpu_throttle_temp_c;

        let server_count = dc.layout().server_count();
        Self {
            rng: SimRng::seed_from(config.seed).derive("cluster-sim"),
            dc,
            profiles,
            state,
            weather,
            catalog,
            iaas_model,
            endpoint_patterns,
            pending,
            instances: BTreeMap::new(),
            carryover_freq: vec![1.0; server_count],
            prev_row_power: BTreeMap::new(),
            prev_aisle_airflow: BTreeMap::new(),
            prev_dc_load: 0.5,
            row_history: BTreeMap::new(),
            last_refinement: SimTime::ZERO,
            next_request_id: 0,
            report,
            config,
        }
    }

    /// The profile store (exposed for tests and examples).
    #[must_use]
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }

    /// The datacenter under simulation.
    #[must_use]
    pub fn datacenter(&self) -> &Datacenter {
        &self.dc
    }

    /// Runs the whole experiment and returns the report.
    #[must_use]
    pub fn run(mut self) -> RunReport {
        let mut clock = SimClock::new(self.config.step, self.config.duration);
        loop {
            let now = clock.now();
            self.step(now);
            if clock.tick().is_none() {
                break;
            }
        }
        self.report
    }

    /// Predicted peak mean-GPU load for a VM (from the customer's or endpoint's history).
    fn predicted_peak_load(&self, vm: &Vm) -> f64 {
        match vm.kind {
            VmKind::Iaas { customer } => self.iaas_model.predicted_peak(customer),
            VmKind::Saas { .. } => 0.9,
        }
    }

    fn place_pending_vms(&mut self, now: SimTime) {
        let baseline = BaselinePlacement;
        let tapas = TapasPlacement::default();
        while let Some(front) = self.pending.front() {
            if front.arrival > now {
                break;
            }
            let vm = self.pending.pop_front().expect("front checked");
            if vm.departure() <= now {
                continue;
            }
            let request = PlacementRequest { vm, predicted_peak_load: self.predicted_peak_load(&vm) };
            let layout = self.dc.layout();
            let chosen = if self.config.policy.placement_enabled() {
                tapas.place(&request, &self.state, layout, &self.profiles)
            } else {
                baseline.place(&request, &self.state, layout, &self.profiles)
            };
            match chosen {
                Some(server) => {
                    let config = match vm.kind {
                        VmKind::Saas { endpoint } => {
                            let default = self
                                .catalog
                                .get(endpoint)
                                .map(|e| e.default_config)
                                .unwrap_or_else(InstanceConfig::default_70b);
                            self.instances.insert(
                                vm.id,
                                InstanceRuntime {
                                    endpoint,
                                    config: default,
                                    utilization: 0.0,
                                    outstanding: 0,
                                    recent_customers: VecDeque::new(),
                                    transition_until: None,
                                },
                            );
                            Some(default)
                        }
                        VmKind::Iaas { .. } => None,
                    };
                    self.state
                        .place(vm, server, request.predicted_peak_load, config)
                        .expect("chosen server is free");
                    self.report.events.record_kind(
                        now,
                        EventKind::VmPlaced,
                        vm.id.to_string(),
                        0.0,
                        format!("on {server}"),
                    );
                }
                None => {
                    self.report.events.record_kind(
                        now,
                        EventKind::VmRejected,
                        vm.id.to_string(),
                        0.0,
                        "no feasible server",
                    );
                }
            }
        }
    }

    fn retire_vms(&mut self, now: SimTime) {
        for retired in self.state.retire_expired(now) {
            self.instances.remove(&retired.vm.id);
            self.report.events.record_kind(
                now,
                EventKind::VmRetired,
                retired.vm.id.to_string(),
                0.0,
                "",
            );
        }
    }

    /// Routes this step's requests for every endpoint, updating instance utilization and
    /// recording latency/quality samples.
    fn route_requests(&mut self, now: SimTime, outside: Celsius) {
        let step_minutes = self.config.step.as_minutes() as f64;
        let router_tapas = TapasRouter::default();
        let router_baseline = BaselineRouter;
        let context = RoutingContext {
            outside_temp: outside,
            dc_load: self.prev_dc_load,
            row_power: self.prev_row_power.clone(),
            aisle_airflow: self.prev_aisle_airflow.clone(),
        };

        // Reset per-step offered load.
        let mut offered_requests: BTreeMap<VmId, f64> = BTreeMap::new();

        let endpoint_ids: Vec<EndpointId> = self.catalog.endpoints().iter().map(|e| e.id).collect();
        for endpoint_id in endpoint_ids {
            let endpoint = self.catalog.get(endpoint_id).expect("known endpoint").clone();
            let pattern = &self.endpoint_patterns[&endpoint_id];
            let rate_per_minute = endpoint.peak_requests_per_minute * pattern.load_at(now);
            let total_requests = rate_per_minute * step_minutes;
            if total_requests <= 0.0 {
                continue;
            }

            // Snapshots of this endpoint's instances.
            let snapshots: Vec<InstanceSnapshot> = self
                .instances
                .iter()
                .filter(|(_, runtime)| runtime.endpoint == endpoint_id)
                .filter_map(|(&vm_id, runtime)| {
                    self.state.server_of(vm_id).map(|server| InstanceSnapshot {
                        vm: vm_id,
                        server,
                        outstanding_requests: runtime.outstanding,
                        utilization: runtime.utilization,
                        recent_customers: runtime.recent_customers.iter().copied().collect(),
                        config: runtime.config,
                        in_transition: runtime
                            .transition_until
                            .map(|until| until > now)
                            .unwrap_or(false),
                    })
                })
                .collect();
            if snapshots.is_empty() {
                continue;
            }

            // Route the step's load in quanta to keep routing cost bounded while still
            // exercising the policy's ordering.
            let quanta = (snapshots.len() * 2).clamp(1, 64);
            let requests_per_quantum = total_requests / quanta as f64;
            // Per-instance request capacity for this step, so live snapshots can track how
            // much utilization each routed quantum adds.
            let capacity_requests: BTreeMap<VmId, f64> = snapshots
                .iter()
                .map(|s| {
                    let goodput = self
                        .profiles
                        .llm
                        .profiles
                        .iter()
                        .find(|p| p.config == s.config)
                        .map(|p| p.goodput_tokens_per_s)
                        .unwrap_or(1000.0);
                    (s.vm, (goodput * step_minutes * 60.0 / MEAN_TOKENS_PER_REQUEST).max(1.0))
                })
                .collect();
            let mut live_snapshots = snapshots.clone();
            for _ in 0..quanta {
                let customer = CustomerId(self.rng.next_u64() % endpoint.customers.max(1));
                let request = InferenceRequest {
                    id: RequestId(self.next_request_id),
                    customer,
                    arrival: now,
                    prompt_tokens: 512,
                    output_tokens: 200,
                };
                self.next_request_id += 1;
                let choice = if self.config.policy.routing_enabled() {
                    router_tapas.route(&request, &live_snapshots, &self.profiles, &context)
                } else {
                    router_baseline.route(&request, &live_snapshots, &self.profiles, &context)
                };
                let Some(vm_id) = choice else { continue };
                *offered_requests.entry(vm_id).or_insert(0.0) += requests_per_quantum;
                // Update the live snapshot so subsequent quanta see the added load (both the
                // outstanding count and the utilization the quantum will cause).
                if let Some(snapshot) = live_snapshots.iter_mut().find(|s| s.vm == vm_id) {
                    snapshot.outstanding_requests += requests_per_quantum.ceil() as usize;
                    let capacity = capacity_requests.get(&vm_id).copied().unwrap_or(1.0);
                    snapshot.utilization =
                        (snapshot.utilization + requests_per_quantum / capacity).min(1.5);
                    if !snapshot.recent_customers.contains(&customer) {
                        snapshot.recent_customers.push(customer);
                    }
                }
                if let Some(runtime) = self.instances.get_mut(&vm_id) {
                    runtime.recent_customers.push_back(customer);
                    while runtime.recent_customers.len() > 32 {
                        runtime.recent_customers.pop_front();
                    }
                }
            }
        }

        // Convert offered load to utilization and record latency/quality samples.
        let step_seconds = step_minutes * 60.0;
        for (&vm_id, runtime) in self.instances.iter_mut() {
            let offered = offered_requests.get(&vm_id).copied().unwrap_or(0.0);
            let offered_tokens_per_s = offered * MEAN_TOKENS_PER_REQUEST / step_seconds;
            let goodput = self
                .profiles
                .llm
                .profiles
                .iter()
                .find(|p| p.config == runtime.config)
                .map(|p| p.goodput_tokens_per_s)
                .unwrap_or(1.0)
                .max(1.0);
            let in_transition = runtime
                .transition_until
                .map(|until| until > now)
                .unwrap_or(false);
            let effective_goodput = if in_transition { goodput * 0.5 } else { goodput };
            let utilization = (offered_tokens_per_s / effective_goodput).min(1.5);
            runtime.utilization = utilization.min(1.0);
            runtime.outstanding = offered.ceil() as usize;

            if offered > 0.0 {
                let latency_factor = if utilization >= 1.0 {
                    OVERLOAD_LATENCY_FACTOR
                } else {
                    (1.0 / (1.0 - utilization)).min(OVERLOAD_LATENCY_FACTOR)
                };
                let quality = runtime.config.quality();
                let requests = offered.round().max(1.0) as u64;
                self.report.requests_served += requests;
                if latency_factor > SLO_LATENCY_FACTOR {
                    self.report.slo_violations += requests;
                    self.report.events.record_kind(
                        now,
                        EventKind::SloViolation,
                        vm_id.to_string(),
                        latency_factor,
                        "",
                    );
                }
                self.report.latency_factors.push(latency_factor);
                self.report.request_quality.push(quality);
                if quality < 0.99 {
                    self.report.events.record_kind(
                        now,
                        EventKind::QualityDegraded,
                        vm_id.to_string(),
                        quality,
                        "",
                    );
                }
            }
        }
    }

    /// Reconfigures SaaS instances within their thermal/power headroom (§4.3).
    fn reconfigure_instances(&mut self, now: SimTime, outside: Celsius) {
        if !self.config.policy.config_enabled() {
            return;
        }
        let configurator = InstanceConfigurator::new(0.9);
        let layout = self.dc.layout().clone();

        // Count SaaS instances per row to share row headroom.
        let mut saas_per_row: BTreeMap<RowId, usize> = BTreeMap::new();
        for (&vm_id, _) in self.instances.iter() {
            if let Some(server) = self.state.server_of(vm_id) {
                *saas_per_row.entry(layout.server(server).row).or_insert(0) += 1;
            }
        }

        let vm_ids: Vec<VmId> = self.instances.keys().copied().collect();
        for vm_id in vm_ids {
            let Some(server) = self.state.server_of(vm_id) else { continue };
            let runtime = self.instances.get(&vm_id).expect("known instance").clone();
            let profile = self.profiles.server(server);
            let row = layout.server(server).row;

            // Thermal headroom -> per-GPU power budget.
            let inlet = profile.predicted_inlet(outside, self.prev_dc_load);
            let max_gpu_power =
                profile.gpu_power_budget(inlet, self.profiles.thermal_headroom_target);

            // Row power headroom -> per-instance server power budget.
            let row_budget = self.profiles.budgets.row_power[&row];
            let row_now = self
                .prev_row_power
                .get(&row)
                .copied()
                .unwrap_or(Kilowatts::ZERO);
            let headroom = row_budget * 0.97 - row_now;
            let share = headroom / saas_per_row.get(&row).copied().unwrap_or(1).max(1) as f64;
            let current_power = profile.predicted_power(runtime.utilization);
            let max_server_power =
                Kilowatts::new((current_power + share).value().max(0.3));

            let goodput = self
                .profiles
                .llm
                .profiles
                .iter()
                .find(|p| p.config == runtime.config)
                .map(|p| p.goodput_tokens_per_s)
                .unwrap_or(1000.0);
            let limits = InstanceLimits {
                max_gpu_power: Watts::new(max_gpu_power.value().max(1.0)),
                max_server_power,
                demand_tokens_per_s: runtime.utilization * goodput,
            };
            let decision = configurator.select(&runtime.config, &limits, &self.profiles);
            if decision.config != runtime.config {
                let downtime = decision.cost.downtime_seconds();
                let runtime_mut = self.instances.get_mut(&vm_id).expect("known instance");
                runtime_mut.config = decision.config;
                if downtime > 0.0 {
                    runtime_mut.transition_until = Some(now + self.config.step);
                }
                self.state.set_config(vm_id, decision.config).expect("placed instance");
                self.report.events.record_kind(
                    now,
                    EventKind::InstanceReconfigured,
                    vm_id.to_string(),
                    downtime,
                    format!("-> {}", decision.config),
                );
            }
        }
    }

    /// Builds the per-server activity for the physics engine.
    fn build_activity(&self, now: SimTime) -> Vec<ServerActivity> {
        let layout = self.dc.layout();
        layout
            .servers()
            .iter()
            .map(|server| {
                let gpus = server.spec.gpus_per_server;
                let carry = self.carryover_freq[server.id.index()];
                match self.state.vm_on(server.id) {
                    None => ServerActivity::idle(gpus),
                    Some(placed) => match placed.vm.kind {
                        VmKind::Iaas { .. } => {
                            let load = self.iaas_model.load_at(&placed.vm, now);
                            ServerActivity {
                                gpu_utilization: vec![load; gpus],
                                frequency_scale: vec![carry; gpus],
                                memory_boundedness: 0.5,
                            }
                        }
                        VmKind::Saas { .. } => {
                            let Some(runtime) = self.instances.get(&placed.vm.id) else {
                                return ServerActivity::idle(gpus);
                            };
                            let profile = self
                                .profiles
                                .llm
                                .profiles
                                .iter()
                                .find(|p| p.config == runtime.config);
                            let (sat_util, boundedness) = profile
                                .map(|p| (p.decode.gpu_utilization, p.decode.memory_boundedness))
                                .unwrap_or((0.6, 0.7));
                            let active_gpus = runtime.config.parallelism.gpus().min(gpus);
                            let util = (sat_util * runtime.utilization).clamp(0.0, 1.0);
                            let freq = runtime.config.frequency.value() * carry;
                            let mut gpu_utilization = vec![0.0; gpus];
                            let mut frequency_scale = vec![1.0; gpus];
                            for slot in 0..active_gpus {
                                gpu_utilization[slot] = util;
                                frequency_scale[slot] = freq;
                            }
                            ServerActivity {
                                gpu_utilization,
                                frequency_scale,
                                memory_boundedness: boundedness,
                            }
                        }
                    },
                }
            })
            .collect()
    }

    /// One simulation step.
    fn step(&mut self, now: SimTime) {
        let outside = self.weather.outside_temp(now);
        self.retire_vms(now);
        self.place_pending_vms(now);
        self.route_requests(now, outside);
        self.reconfigure_instances(now, outside);

        let activity = self.build_activity(now);
        let failures = self.config.failures.state_at(now);
        let input = StepInput { outside_temp: outside, activity, failures };
        let outcome = self.dc.evaluate(&input);

        // Record metrics.
        self.report
            .max_gpu_temp
            .push(now, outcome.max_gpu_temp().value());
        self.report
            .peak_row_power
            .push(now, outcome.peak_row_power().value());
        self.report
            .datacenter_power
            .push(now, outcome.power.datacenter.draw.value());
        let mean_saas_util = if self.instances.is_empty() {
            0.0
        } else {
            self.instances.values().map(|r| r.utilization).sum::<f64>()
                / self.instances.len() as f64
        };
        self.report.saas_utilization.push(now, mean_saas_util);

        for throttle in &outcome.thermal_throttles {
            self.report.events.record_kind(
                now,
                EventKind::ThermalThrottle,
                throttle.gpu.to_string(),
                throttle.temperature.value() - self.report.gpu_throttle_temp_c,
                "",
            );
        }
        for row in outcome.power.over_budget_rows() {
            self.report.events.record_kind(
                now,
                EventKind::PowerCap,
                row.to_string(),
                outcome.power.rows[&row].utilization,
                "",
            );
        }
        for (aisle, assessment) in &outcome.aisle_airflow {
            if assessment.is_violated() {
                self.report.events.record_kind(
                    now,
                    EventKind::AirflowViolation,
                    aisle.to_string(),
                    assessment.utilization,
                    "",
                );
            }
        }

        // Carry throttling and capping into the next step's effective frequency, and let
        // unaffected servers recover.
        let mut next_freq = vec![1.0f64; self.carryover_freq.len()];
        for throttle in &outcome.thermal_throttles {
            let idx = throttle.gpu.server.index();
            next_freq[idx] = next_freq[idx].min(throttle.frequency_scale);
        }
        for directive in &outcome.power.capping {
            let idx = directive.server.index();
            next_freq[idx] = next_freq[idx].min(directive.power_fraction.cbrt());
        }
        self.carryover_freq = next_freq;

        // Infrastructure state the router and configurator will see next step.
        self.prev_row_power = outcome.row_power();
        self.prev_aisle_airflow = outcome
            .aisle_airflow
            .iter()
            .map(|(&aisle, assessment)| (aisle, assessment.demand))
            .collect();
        self.prev_dc_load = outcome.datacenter_load;

        // Weekly refinement of the row power templates (§4.5).
        for (row, power) in outcome.row_power() {
            self.row_history
                .entry(row)
                .or_default()
                .push((now, power.value()));
        }
        if (now - self.last_refinement).as_days() >= 7.0 {
            self.profiles.refine_row_templates(&self.row_history);
            self.row_history.clear();
            self.last_refinement = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use tapas::policy::Policy;

    #[test]
    fn smoke_test_runs_and_records_metrics() {
        let report = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
        assert_eq!(report.max_gpu_temp.len(), 24 + 1);
        assert!(report.peak_temperature_c() > 20.0);
        assert!(report.peak_row_power_kw() > 0.0);
        assert!(report.events.count(EventKind::VmPlaced) > 0);
        assert!(report.requests_served > 0);
        assert!(report.mean_quality() > 0.5);
    }

    #[test]
    fn tapas_policy_runs_on_small_cluster() {
        let mut config = ExperimentConfig::small_smoke_test();
        config.policy = Policy::Tapas;
        let report = ClusterSimulator::new(config).run();
        assert_eq!(report.policy, "TAPAS");
        assert!(report.peak_temperature_c() > 20.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
        let b = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
        assert_eq!(a.max_gpu_temp.values(), b.max_gpu_temp.values());
        assert_eq!(a.peak_row_power.values(), b.peak_row_power.values());
        assert_eq!(a.requests_served, b.requests_served);
    }

    #[test]
    fn different_policies_produce_different_trajectories() {
        let baseline = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
        let mut config = ExperimentConfig::small_smoke_test();
        config.policy = Policy::Tapas;
        let tapas = ClusterSimulator::new(config).run();
        assert_ne!(baseline.policy, tapas.policy);
        // The trajectories should not be identical (placement and routing differ).
        assert!(
            baseline.peak_row_power.values() != tapas.peak_row_power.values()
                || baseline.max_gpu_temp.values() != tapas.max_gpu_temp.values()
        );
    }

    #[test]
    fn failure_schedule_is_honoured() {
        let mut config = ExperimentConfig::small_smoke_test();
        config.failures = dc_sim::failures::FailureSchedule::none()
            .with_power_emergency(SimTime::from_minutes(30), SimTime::from_minutes(90));
        let report = ClusterSimulator::new(config).run();
        // During the emergency the reduced capacity should trigger capping on a loaded
        // cluster, or at least be recorded as events if load is high enough; the run must in
        // any case complete and keep recording.
        assert_eq!(report.max_gpu_temp.len(), 25);
    }
}
