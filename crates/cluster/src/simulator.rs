//! The discrete-time cluster simulation loop.
//!
//! One step (1–10 simulated minutes) performs, in order: VM retirements and placements,
//! endpoint request routing, instance reconfiguration, IaaS load replay, datacenter physics
//! evaluation (temperatures, powers, airflow, capping), metric recording, and carry-over of
//! throttling/capping effects into the next step — the same control structure the paper's
//! simulator uses (§5.1).
//!
//! # Hot-path layout
//!
//! The simulator owns an [`InstanceRegistry`]: a per-endpoint struct-of-arrays store of every
//! SaaS instance's runtime state (utilization, outstanding requests, recent customers,
//! configuration, cached profile figures). The registry is updated in place on VM
//! place/retire/reconfigure and mutated per routing quantum through the index the router
//! returns, so routing never rebuilds or clones snapshot lists. All carry-over state
//! (row power, aisle airflow, carry-over frequencies, row histories) lives in dense vectors
//! indexed by the id newtypes, the physics engine runs through a persistent
//! [`StepWorkspace`] whose telemetry grids (`TempGrid`, per-level `OrdinalMap`s) are
//! ordinal-aligned with those vectors, and metric recording walks the grids without any
//! map lookups — the steady-state step loop is allocation-free end to end.

use crate::experiment::{ExperimentConfig, RequestFabricConfig};
use crate::fabric::{FabricRequest, RequestFabric};
use crate::metrics::RunReport;
use crate::scenario::ResolvedTimeline;
use dc_sim::engine::{Datacenter, StepInput, StepWorkspace};
use dc_sim::weather::WeatherModel;
use llm_sim::config::InstanceConfig;
use llm_sim::hardware::GpuHardware;
use llm_sim::request::{CustomerId, InferenceRequest, RequestId};
use simkit::events::{EventKind, LabelInterner};
use simkit::rng::SimRng;
use simkit::time::{SimClock, SimTime};
use simkit::units::{Celsius, CubicFeetPerMinute, Kilowatts, Watts};
use std::collections::VecDeque;
use std::sync::Arc;
use tapas::configurator::{InstanceConfigurator, InstanceLimits};
use tapas::geo::SiteSignals;
use tapas::placement::{
    BaselinePlacement, PlacementPlanner, PlacementRequest, TapasPlacement, VmPlacementPolicy,
};
use tapas::profiles::ProfileStore;
use tapas::routing::{
    BaselineRouter, CandidateView, PreparedRoutingContext, RecentWindow, RouterScratch,
    RoutingContext, TapasRouter,
};
use tapas::state::{ClusterState, VmSlotMap};
use workload::diurnal::DiurnalPattern;
use workload::endpoints::{EndpointCatalog, EndpointId};
use workload::iaas::IaasLoadModel;
use workload::trace::{TraceError, TraceRecord};
use workload::vm::{Vm, VmId, VmKind};

/// Mean tokens processed per request (prompt + output) used to convert request rates into
/// token throughput demands.
const MEAN_TOKENS_PER_REQUEST: f64 = 712.0;
/// Latency factor assigned to requests on an overloaded instance.
const OVERLOAD_LATENCY_FACTOR: f64 = 12.0;
/// The SLO expressed as a latency factor over the unloaded latency.
const SLO_LATENCY_FACTOR: f64 = 5.0;
/// Goodput assumed for configurations missing from the profile sweep (tokens/s).
const FALLBACK_GOODPUT: f64 = 1000.0;

/// Struct-of-arrays runtime state of one endpoint's SaaS instances.
///
/// Column `i` across all vectors describes one instance. The router consumes the columns
/// directly as a [`CandidateView`]; per-quantum updates mutate them in place.
#[derive(Debug, Clone, Default)]
struct EndpointPool {
    vm: Vec<VmId>,
    server: Vec<dc_sim::ids::ServerId>,
    outstanding: Vec<u32>,
    utilization: Vec<f64>,
    in_transition: Vec<bool>,
    recent: Vec<RecentWindow>,
    config: Vec<InstanceConfig>,
    /// Profiled goodput of `config` (NaN when the configuration was not in the sweep).
    goodput: Vec<f64>,
    /// Saturated per-GPU utilization of `config`'s decode phase.
    sat_util: Vec<f64>,
    /// Memory-boundedness of `config`'s decode phase.
    boundedness: Vec<f64>,
    transition_until: Vec<Option<SimTime>>,
    /// Requests offered to the instance during the current step.
    offered: Vec<f64>,
    /// Unclamped demand pressure: last step's offered load over effective goodput,
    /// saturated at 1.5. Equals `utilization` below 1.0, but keeps signalling excess
    /// demand above it so the configurator can upsize during surges.
    pressure: Vec<f64>,
    /// Cached TAPAS risk flags, refreshed per step and after each routed quantum.
    risky: Vec<bool>,
}

impl EndpointPool {
    fn len(&self) -> usize {
        self.vm.len()
    }

    fn view(&self) -> CandidateView<'_> {
        CandidateView {
            vm: &self.vm,
            server: &self.server,
            outstanding: &self.outstanding,
            utilization: &self.utilization,
            in_transition: &self.in_transition,
            recent: &self.recent,
        }
    }

    fn swap_remove(&mut self, index: usize) {
        self.vm.swap_remove(index);
        self.server.swap_remove(index);
        self.outstanding.swap_remove(index);
        self.utilization.swap_remove(index);
        self.in_transition.swap_remove(index);
        self.recent.swap_remove(index);
        self.config.swap_remove(index);
        self.goodput.swap_remove(index);
        self.sat_util.swap_remove(index);
        self.boundedness.swap_remove(index);
        self.transition_until.swap_remove(index);
        self.offered.swap_remove(index);
        self.pressure.swap_remove(index);
        self.risky.swap_remove(index);
    }
}

/// The simulator's persistent, incrementally updated store of SaaS instance runtime state.
#[derive(Debug, Clone, Default)]
pub(crate) struct InstanceRegistry {
    pools: Vec<EndpointPool>,
    endpoint_of: VmSlotMap,
    position_of: VmSlotMap,
    total: usize,
}

impl InstanceRegistry {
    fn lookup(&self, vm: VmId) -> Option<(usize, usize)> {
        let endpoint = self.endpoint_of.get(vm)? as usize;
        let position = self.position_of.get(vm)? as usize;
        Some((endpoint, position))
    }

    fn insert(
        &mut self,
        vm: VmId,
        server: dc_sim::ids::ServerId,
        endpoint: EndpointId,
        config: InstanceConfig,
        profiles: &ProfileStore,
    ) {
        let index = endpoint.0 as usize;
        if index >= self.pools.len() {
            self.pools.resize_with(index + 1, EndpointPool::default);
        }
        let pool = &mut self.pools[index];
        let position = pool.len();
        pool.vm.push(vm);
        pool.server.push(server);
        pool.outstanding.push(0);
        pool.utilization.push(0.0);
        pool.in_transition.push(false);
        pool.recent.push(RecentWindow::new());
        pool.config.push(config);
        let (goodput, sat_util, boundedness) = profile_figures(profiles, &config);
        pool.goodput.push(goodput);
        pool.sat_util.push(sat_util);
        pool.boundedness.push(boundedness);
        pool.transition_until.push(None);
        pool.offered.push(0.0);
        pool.pressure.push(0.0);
        pool.risky.push(false);
        self.endpoint_of.insert(vm, index as u32);
        self.position_of.insert(vm, position as u32);
        self.total += 1;
    }

    fn remove(&mut self, vm: VmId) {
        let Some((endpoint, position)) = self.lookup(vm) else {
            return;
        };
        self.endpoint_of.remove(vm);
        self.position_of.remove(vm);
        let pool = &mut self.pools[endpoint];
        pool.swap_remove(position);
        if let Some(&moved) = pool.vm.get(position) {
            self.position_of.insert(moved, position as u32);
        }
        self.total -= 1;
    }

    fn set_config(
        &mut self,
        vm: VmId,
        config: InstanceConfig,
        transition_until: Option<SimTime>,
        profiles: &ProfileStore,
    ) {
        if let Some((endpoint, position)) = self.lookup(vm) {
            let pool = &mut self.pools[endpoint];
            pool.config[position] = config;
            let (goodput, sat_util, boundedness) = profile_figures(profiles, &config);
            pool.goodput[position] = goodput;
            pool.sat_util[position] = sat_util;
            pool.boundedness[position] = boundedness;
            if transition_until.is_some() {
                pool.transition_until[position] = transition_until;
            }
        }
    }

    /// Refreshes per-step flags and resets offered-load accumulators.
    fn begin_step(&mut self, now: SimTime) {
        for pool in &mut self.pools {
            for i in 0..pool.len() {
                pool.in_transition[i] =
                    pool.transition_until[i].map(|until| until > now).unwrap_or(false);
                pool.offered[i] = 0.0;
            }
        }
    }

    /// Total number of registered instances (used by consistency checks).
    #[cfg(test)]
    fn instance_count(&self) -> usize {
        self.total
    }

    fn mean_utilization(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .pools
            .iter()
            .flat_map(|pool| pool.utilization.iter())
            .sum();
        sum / self.total as f64
    }
}

/// Cached profile figures for a configuration: `(goodput, saturated GPU utilization,
/// memory boundedness)`. Goodput is NaN when the configuration was not profiled so call
/// sites can apply their own fallback.
fn profile_figures(profiles: &ProfileStore, config: &InstanceConfig) -> (f64, f64, f64) {
    match profiles.profile_for(config) {
        Some(profile) => (
            profile.goodput_tokens_per_s,
            profile.decode.gpu_utilization,
            profile.decode.memory_boundedness,
        ),
        None => (f64::NAN, 0.6, 0.7),
    }
}

/// Per-entity-class [`LabelInterner`]s for the hot event-recording paths.
///
/// Every recorded event names its entity (a VM, GPU, row or aisle); formatting that name
/// per event allocated a fresh `String` on every throttle/cap/SLO event. Each class keys
/// its interner by the entity's dense ordinal, so steady-state recording reuses shared
/// labels and never formats.
#[derive(Debug, Default, Clone)]
struct EntityLabels {
    vm: LabelInterner,
    gpu: LabelInterner,
    row: LabelInterner,
    aisle: LabelInterner,
}

/// The end-to-end cluster simulator.
#[derive(Debug)]
pub struct ClusterSimulator {
    config: ExperimentConfig,
    /// The config's scenario resolved once into dense per-step vectors (weather overlay,
    /// demand multipliers, merged failure schedule); the step loop only indexes it.
    timeline: ResolvedTimeline,
    dc: Datacenter,
    profiles: Arc<ProfileStore>,
    state: ClusterState,
    weather: WeatherModel,
    catalog: EndpointCatalog,
    iaas_model: IaasLoadModel,
    /// Diurnal pattern per endpoint, indexed by `EndpointId`.
    endpoint_patterns: Vec<DiurnalPattern>,
    pending: VecDeque<Vm>,
    registry: InstanceRegistry,
    planner: PlacementPlanner,
    tapas_placement: TapasPlacement,
    router_tapas: TapasRouter,
    /// Infrastructure state the router consults; row power and aisle airflow are carried
    /// over from the previous step's physics outcome.
    routing_context: RoutingContext,
    prepared_routing: PreparedRoutingContext,
    router_scratch: RouterScratch,
    carryover_freq: Vec<f64>,
    carryover_next: Vec<f64>,
    prev_dc_load: f64,
    /// Observed row power history per row, for the weekly template refinement.
    row_history: Vec<Vec<(SimTime, f64)>>,
    /// Scratch: SaaS instance count per row (for headroom sharing in reconfiguration).
    saas_per_row: Vec<u32>,
    last_refinement: SimTime,
    rng: SimRng,
    next_request_id: u64,
    step_input: StepInput,
    workspace: StepWorkspace,
    /// Interned entity labels for allocation-free event recording.
    labels: EntityLabels,
    /// GPUs per server (for the flat GPU-label ordinal `server * gpus_per_server + slot`).
    gpus_per_server: usize,
    /// The opt-in per-request serving overlay (None unless the experiment enables it).
    fabric: Option<RequestFabric>,
    /// Scratch: per-endpoint placed-instance counts handed to the fabric each step.
    fabric_replicas: Vec<u32>,
    /// Worst fabric pressure across endpoints after the last served step (clamped to
    /// the pools' 1.5 saturation ceiling; `0.0` with the fabric off). Feeds
    /// [`SiteSignals::request_pressure`] so fleet request routing diverts away from
    /// sites whose schedulers are saturated (e.g. under replica failures).
    fabric_pressure: f64,
    report: RunReport,
}

impl ClusterSimulator {
    /// Builds a simulator for an experiment configuration, generating its own VM arrival
    /// stream.
    ///
    /// # Panics
    /// Panics with the [`crate::scenario::ScenarioError`]'s message if the composed
    /// scenario fails [`ExperimentConfig::validate`].
    #[must_use]
    pub fn new(config: ExperimentConfig) -> Self {
        let catalog = config.endpoint_catalog();
        let pending: VecDeque<Vm> = config.vm_stream(&catalog, 1.0).into();
        Self::build(config, catalog, pending, true)
    }

    /// Builds a fleet cell: identical to [`Self::new`] except that the arrival queue
    /// starts empty — the fleet step loop generates the stream once fleet-wide and feeds
    /// each cell its routed share through [`Self::enqueue`].
    #[must_use]
    pub(crate) fn fleet_cell(config: ExperimentConfig) -> Self {
        let catalog = config.endpoint_catalog();
        // Fleet cells never self-generate fabric traffic: the fleet loop generates the
        // stream once fleet-wide and routes per request into each cell's inbox.
        Self::build(config, catalog, VecDeque::new(), false)
    }

    /// Builds a simulator that replays an externally supplied VM arrival trace instead
    /// of generating one — the trace-ingestion hook for real workloads. `arrivals` must
    /// be sorted by non-decreasing arrival time (the order
    /// [`ExperimentConfig::vm_stream`] produces).
    ///
    /// # Panics
    /// Panics with the [`crate::scenario::ScenarioError`]'s message if the composed
    /// scenario fails [`ExperimentConfig::validate`].
    #[must_use]
    pub fn with_arrivals(config: ExperimentConfig, arrivals: Vec<Vm>) -> Self {
        debug_assert!(
            arrivals.windows(2).all(|pair| pair[0].arrival <= pair[1].arrival),
            "replayed arrival traces must be sorted by arrival time"
        );
        let catalog = config.endpoint_catalog();
        Self::build(config, catalog, arrivals.into(), true)
    }

    /// Builds a simulator that replays an externally supplied *request* trace through the
    /// request fabric (the inference-side trace-ingestion hook, mirroring
    /// [`Self::with_arrivals`] on the VM side). The fabric is enabled with its default
    /// configuration if the experiment did not opt in explicitly; the VM arrival stream
    /// is still generated as in [`Self::new`] so the trace has instances to land on.
    ///
    /// # Errors
    /// Returns [`TraceError::UnknownEndpoint`] if a record names an endpoint outside the
    /// experiment's catalog.
    ///
    /// # Panics
    /// Panics with the [`crate::scenario::ScenarioError`]'s message if the composed
    /// scenario fails [`ExperimentConfig::validate`].
    pub fn with_request_trace(
        mut config: ExperimentConfig,
        records: &[TraceRecord],
    ) -> Result<Self, TraceError> {
        if config.request_fabric.is_none() {
            config.request_fabric = Some(RequestFabricConfig::default());
        }
        let catalog = config.endpoint_catalog();
        let pending: VecDeque<Vm> = config.vm_stream(&catalog, 1.0).into();
        let mut sim = Self::build(config, catalog, pending, false);
        sim.fabric
            .as_mut()
            .expect("request_fabric was just enabled")
            .load_trace(records)?;
        Ok(sim)
    }

    fn build(
        config: ExperimentConfig,
        catalog: EndpointCatalog,
        pending: VecDeque<Vm>,
        generate_fabric: bool,
    ) -> Self {
        // Scenarios reach here from three entry points (generated stream, replayed
        // trace, fleet cell); deserialized or hand-mutated ones may have skipped
        // `ScenarioBuilder::build`, so the event invariants are (re-)checked before
        // resolution can bake e.g. a NaN delta into the dense timeline.
        config.validate().unwrap_or_else(|error| panic!("{error}"));
        let layout = config.layout.build();
        let dc = Datacenter::new(layout, config.seed);
        let profiles = ProfileStore::offline_profiling_shared(&dc, &GpuHardware::a100());
        let state = ClusterState::with_layout(dc.layout());
        let weather = WeatherModel::new(config.climate, config.seed);

        let iaas_model = IaasLoadModel::new(12, config.seed);
        let mut pattern_rng = SimRng::seed_from(config.seed).derive("endpoint-patterns");
        let endpoint_patterns: Vec<DiurnalPattern> = catalog
            .endpoints()
            .iter()
            .map(|e| {
                DiurnalPattern::interactive(config.seed ^ e.id.0)
                    .with_peak_hour(pattern_rng.uniform(10.0, 20.0))
            })
            .collect();

        let mut report = RunReport::new(config.policy.label(), config.duration, config.step);
        report.row_power_budget_kw = dc
            .layout()
            .rows()
            .iter()
            .map(|r| r.power_budget.value())
            .fold(0.0, f64::max);
        report.gpu_throttle_temp_c = dc.layout().servers()[0].spec.gpu_throttle_temp_c;

        let server_count = dc.layout().server_count();
        let row_count = dc.layout().rows().len();
        let aisle_count = dc.layout().aisles().len();
        let tapas_placement = TapasPlacement::default();
        let planner =
            PlacementPlanner::new(&state, dc.layout(), &profiles, tapas_placement.config.design);
        let router_tapas = TapasRouter::default();
        let routing_context = RoutingContext {
            outside_temp: Celsius::new(20.0),
            dc_load: 0.5,
            row_power: vec![Kilowatts::ZERO; row_count],
            aisle_airflow: vec![CubicFeetPerMinute::ZERO; aisle_count],
        };
        let prepared_routing =
            PreparedRoutingContext::new(&routing_context, &router_tapas.config, &profiles);
        let step_input = StepInput::idle(dc.layout(), Celsius::new(20.0));
        let workspace = StepWorkspace::for_topology(Arc::clone(dc.topology()));
        let timeline = config.resolved_timeline();
        let fabric = config
            .request_fabric
            .map(|fc| RequestFabric::new(config.seed, &catalog, fc, generate_fabric));
        let gpus_per_server = dc.layout().servers()[0].spec.gpus_per_server;
        Self {
            timeline,
            rng: SimRng::seed_from(config.seed).derive("cluster-sim"),
            profiles,
            state,
            weather,
            catalog,
            iaas_model,
            endpoint_patterns,
            pending,
            registry: InstanceRegistry::default(),
            planner,
            tapas_placement,
            router_tapas,
            routing_context,
            prepared_routing,
            router_scratch: RouterScratch::default(),
            carryover_freq: vec![1.0; server_count],
            carryover_next: vec![1.0; server_count],
            prev_dc_load: 0.5,
            row_history: vec![Vec::new(); row_count],
            saas_per_row: vec![0; row_count],
            last_refinement: SimTime::ZERO,
            next_request_id: 0,
            step_input,
            workspace,
            labels: EntityLabels::default(),
            gpus_per_server,
            fabric,
            fabric_replicas: Vec::new(),
            fabric_pressure: 0.0,
            report,
            dc,
            config,
        }
    }

    /// The profile store (exposed for tests and examples).
    #[must_use]
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }

    /// The datacenter under simulation.
    #[must_use]
    pub fn datacenter(&self) -> &Datacenter {
        &self.dc
    }

    /// Runs the whole experiment and returns the report.
    #[must_use]
    pub fn run(mut self) -> RunReport {
        let mut clock = SimClock::new(self.config.step, self.config.duration);
        loop {
            let now = clock.now();
            self.step(now);
            if clock.tick().is_none() {
                break;
            }
        }
        self.into_report()
    }

    /// Queues a fleet-routed VM arrival. Arrivals must be enqueued in the same
    /// non-decreasing arrival order the fleet stream produces.
    pub(crate) fn enqueue(&mut self, vm: Vm) {
        self.pending.push_back(vm);
    }

    /// Delivers a fleet-routed fabric request into this cell's inbox (no-op unless the
    /// cell's experiment enabled the fabric). The inbox is an event queue, so delivery
    /// order only tie-breaks among equal millisecond timestamps.
    pub(crate) fn deliver_request(&mut self, time_ms: u64, request: FabricRequest) {
        if let Some(fabric) = self.fabric.as_mut() {
            fabric.deliver(time_ms, request);
        }
    }

    /// Advances the cell by one step (the fleet step loop's per-site entry point).
    pub(crate) fn step_at(&mut self, now: SimTime) {
        self.step(now);
    }

    /// This site's current scheduling signals, summarized from the last step's dense
    /// telemetry grids. Before the first step (no telemetry yet) the site reports
    /// cold-start signals: fully free, full row budget as headroom, no emergencies.
    pub(crate) fn site_signals(&self) -> SiteSignals {
        let free_servers = self.state.free_count() as u32;
        if self.report.max_gpu_temp.is_empty() {
            let provisioned: f64 = self
                .dc
                .layout()
                .rows()
                .iter()
                .map(|row| row.power_budget.value())
                .sum();
            return SiteSignals::cold_start(free_servers, provisioned);
        }
        let outcome = &self.workspace.outcome;
        SiteSignals {
            power_headroom_kw: outcome.power.total_row_headroom().value(),
            worst_power_utilization: outcome.power.worst_level_utilization(),
            thermal_slack_c: self.report.gpu_throttle_temp_c - outcome.max_gpu_temp().value(),
            dc_load: outcome.datacenter_load,
            free_servers,
            throttled_gpus: outcome.thermal_throttles.len() as u32,
            capped_servers: outcome.power.capping.len() as u32,
            // Grid price is exogenous (scenario-resolved); the fleet injects it.
            grid_price_per_mwh: 0.0,
            request_pressure: self.fabric_pressure,
        }
    }

    /// The per-endpoint effective serving-instance counts of the last fabric step
    /// (placed replicas minus currently failed ones; empty before the first step or
    /// with the fabric off). The fleet publishes these to the request router so its
    /// failover spread can deal each endpoint's stream to where that endpoint's
    /// capacity actually lives.
    pub(crate) fn fabric_effective_replicas(&self) -> &[u32] {
        &self.fabric_replicas
    }

    /// Consumes the cell and returns its report (the fleet's end-of-run collection),
    /// folding the fabric's per-request metrics in when the fabric ran.
    pub(crate) fn into_report(mut self) -> RunReport {
        if let Some(fabric) = self.fabric.as_mut() {
            self.report.request_fabric = Some(fabric.take_metrics());
        }
        self.report
    }

    /// The cell's resolved scenario timeline (the fleet reads per-site grid prices from
    /// here instead of resolving the scenario a second time).
    pub(crate) fn timeline(&self) -> &ResolvedTimeline {
        &self.timeline
    }

    /// Predicted peak mean-GPU load for a VM (from the customer's or endpoint's history).
    fn predicted_peak_load(&self, vm: &Vm) -> f64 {
        match vm.kind {
            VmKind::Iaas { customer } => self.iaas_model.predicted_peak(customer),
            VmKind::Saas { .. } => 0.9,
        }
    }

    fn place_pending_vms(&mut self, now: SimTime) {
        let baseline = BaselinePlacement;
        while let Some(front) = self.pending.front() {
            if front.arrival > now {
                break;
            }
            let vm = self.pending.pop_front().expect("front checked");
            if vm.departure() <= now {
                continue;
            }
            let request = PlacementRequest { vm, predicted_peak_load: self.predicted_peak_load(&vm) };
            let layout = self.dc.layout();
            let chosen = if self.config.policy.placement_enabled() {
                self.tapas_placement.place_with(
                    &request,
                    &self.state,
                    layout,
                    &self.profiles,
                    &mut self.planner,
                )
            } else {
                baseline.place(&request, &self.state, layout, &self.profiles)
            };
            match chosen {
                Some(server) => {
                    let config = match vm.kind {
                        VmKind::Saas { endpoint } => {
                            let default = self
                                .catalog
                                .get(endpoint)
                                .map(|e| e.default_config)
                                .unwrap_or_else(InstanceConfig::default_70b);
                            self.registry.insert(vm.id, server, endpoint, default, &self.profiles);
                            Some(default)
                        }
                        VmKind::Iaas { .. } => None,
                    };
                    self.state
                        .place(vm, server, request.predicted_peak_load, config)
                        .expect("chosen server is free");
                    self.planner.on_place(server, request.predicted_peak_load, &self.profiles);
                    self.report.events.record_kind(
                        now,
                        EventKind::VmPlaced,
                        self.labels.vm.get_or_insert_with(vm.id.0 as usize, || vm.id.to_string()),
                        0.0,
                        format!("on {server}"),
                    );
                }
                None => {
                    self.report.events.record_kind(
                        now,
                        EventKind::VmRejected,
                        self.labels.vm.get_or_insert_with(vm.id.0 as usize, || vm.id.to_string()),
                        0.0,
                        "no feasible server",
                    );
                }
            }
        }
    }

    fn retire_vms(&mut self, now: SimTime) {
        for retired in self.state.retire_expired(now) {
            self.registry.remove(retired.vm.id);
            self.planner
                .on_remove(retired.server, retired.predicted_peak_load, &self.profiles);
            let vm_id = retired.vm.id;
            self.report.events.record_kind(
                now,
                EventKind::VmRetired,
                self.labels.vm.get_or_insert_with(vm_id.0 as usize, || vm_id.to_string()),
                0.0,
                "",
            );
        }
    }

    /// Routes this step's requests for every endpoint, updating instance utilization and
    /// recording latency/quality samples.
    ///
    /// Routing operates directly on the registry's per-endpoint columns: each quantum picks
    /// a candidate index, and the chosen column entries are updated in place — no snapshot
    /// rebuild, no clone, no linear search.
    fn route_requests(&mut self, now: SimTime, outside: Celsius) {
        let step_minutes = self.config.step.as_minutes() as f64;
        self.routing_context.outside_temp = outside;
        self.routing_context.dc_load = self.prev_dc_load;
        self.prepared_routing.refresh(
            &self.routing_context,
            &self.router_tapas.config,
            &self.profiles,
        );
        self.router_scratch.begin_step(self.profiles.server_count());
        self.registry.begin_step(now);
        let routing_enabled = self.config.policy.routing_enabled();
        let step_seconds = step_minutes * 60.0;

        for endpoint in self.catalog.endpoints() {
            let pattern = &self.endpoint_patterns[endpoint.id.0 as usize];
            // Scenario demand shaping: surges/ramps multiply the diurnal rate (the
            // neutral multiplier 1.0 leaves the legacy rate bit-identical).
            let rate_per_minute = endpoint.peak_requests_per_minute
                * pattern.load_at(now)
                * self.timeline.demand_scale_at(now, endpoint.id);
            let total_requests = rate_per_minute * step_minutes;
            if total_requests <= 0.0 {
                continue;
            }
            let Some(pool) = self.registry.pools.get_mut(endpoint.id.0 as usize) else {
                continue;
            };
            if pool.len() == 0 {
                continue;
            }

            // Route the step's load in quanta to keep routing cost bounded while still
            // exercising the policy's ordering. Risk flags are computed once per endpoint
            // per step; each quantum then refreshes only the flag of the instance it loaded.
            if routing_enabled {
                let mut risky = std::mem::take(&mut pool.risky);
                self.router_tapas.fill_risk_flags(
                    &pool.view(),
                    &self.profiles,
                    &self.prepared_routing,
                    &mut self.router_scratch,
                    &mut risky,
                );
                pool.risky = risky;
            }
            let quanta = (pool.len() * 2).clamp(1, 64);
            let requests_per_quantum = total_requests / quanta as f64;
            for _ in 0..quanta {
                let customer = CustomerId(self.rng.next_u64() % endpoint.customers.max(1));
                let request = InferenceRequest {
                    id: RequestId(self.next_request_id),
                    customer,
                    arrival: now,
                    prompt_tokens: 512,
                    output_tokens: 200,
                };
                self.next_request_id += 1;
                let choice = if routing_enabled {
                    self.router_tapas.route_prescored(&request, &pool.view(), &pool.risky)
                } else {
                    BaselineRouter.route_view(&pool.view())
                };
                let Some(index) = choice else { continue };
                // Update the live columns so subsequent quanta see the added load (both the
                // outstanding count and the utilization the quantum will cause).
                pool.offered[index] += requests_per_quantum;
                pool.outstanding[index] += requests_per_quantum.ceil() as u32;
                let goodput = if pool.goodput[index].is_nan() {
                    FALLBACK_GOODPUT
                } else {
                    pool.goodput[index]
                };
                let capacity =
                    (goodput * step_seconds / MEAN_TOKENS_PER_REQUEST).max(1.0);
                pool.utilization[index] =
                    (pool.utilization[index] + requests_per_quantum / capacity).min(1.5);
                pool.recent[index].push(customer);
                if routing_enabled {
                    pool.risky[index] = self.router_tapas.candidate_risk(
                        pool.server[index],
                        pool.utilization[index],
                        &self.profiles,
                        &self.prepared_routing,
                        &mut self.router_scratch,
                    );
                }
            }
        }

        // Convert offered load to utilization and record latency/quality samples.
        let carryover = &self.carryover_freq;
        for pool in &mut self.registry.pools {
            for i in 0..pool.len() {
                let offered = pool.offered[i];
                let offered_tokens_per_s = offered * MEAN_TOKENS_PER_REQUEST / step_seconds;
                let goodput = if pool.goodput[i].is_nan() {
                    1.0
                } else {
                    pool.goodput[i]
                }
                .max(1.0);
                let in_transition = pool.in_transition[i];
                // A hardware-throttled server serves proportionally fewer tokens: the
                // carryover frequency scale from last step's thermal-throttle and
                // power-capping directives degrades goodput exactly as it degrades the
                // physics-side clock (1.0 on a healthy server is a bit-identical no-op).
                let throttle = carryover[pool.server[i].index()];
                let effective_goodput =
                    if in_transition { goodput * 0.5 } else { goodput } * throttle;
                let utilization = (offered_tokens_per_s / effective_goodput).min(1.5);
                pool.pressure[i] = utilization;
                pool.utilization[i] = utilization.min(1.0);
                pool.outstanding[i] = offered.ceil() as u32;

                if offered > 0.0 {
                    let latency_factor = if utilization >= 1.0 {
                        OVERLOAD_LATENCY_FACTOR
                    } else {
                        (1.0 / (1.0 - utilization)).min(OVERLOAD_LATENCY_FACTOR)
                    };
                    let quality = pool.config[i].quality();
                    let requests = offered.round().max(1.0) as u64;
                    self.report.requests_served += requests;
                    let vm_id = pool.vm[i];
                    if latency_factor > SLO_LATENCY_FACTOR {
                        self.report.slo_violations += requests;
                        self.report.events.record_kind(
                            now,
                            EventKind::SloViolation,
                            self.labels
                                .vm
                                .get_or_insert_with(vm_id.0 as usize, || vm_id.to_string()),
                            latency_factor,
                            "",
                        );
                    }
                    self.report.latency_factors.push(latency_factor);
                    self.report.request_quality.push(quality);
                    if quality < 0.99 {
                        self.report.events.record_kind(
                            now,
                            EventKind::QualityDegraded,
                            self.labels
                                .vm
                                .get_or_insert_with(vm_id.0 as usize, || vm_id.to_string()),
                            quality,
                            "",
                        );
                    }
                }
            }
        }
    }

    /// Advances the request fabric by one step (no-op unless the experiment enabled it):
    /// generates the step's arrivals (single-site mode), admits and serves them through
    /// the per-endpoint continuous-batching schedulers, and blends the fabric's
    /// KV/backlog pressure into the endpoint pools' demand pressure so the instance
    /// configurator reacts to request-level congestion, not just aggregate rates.
    fn step_fabric(&mut self, now: SimTime) {
        if self.fabric.is_none() {
            return;
        }
        self.fabric_replicas.clear();
        for ordinal in 0..self.catalog.len() {
            let placed = self.registry.pools.get(ordinal).map_or(0, |pool| pool.len() as u32);
            // Replica-failure windows kill serving processes without touching VM
            // placement: the placed instances survive on the books, but the fabric
            // serves on whatever capacity is actually up. Shrinking below the KV
            // commitment triggers the scheduler's preempt-and-requeue path.
            let failed = self
                .timeline
                .failed_replicas_at(now, EndpointId(ordinal as u64));
            self.fabric_replicas.push(placed.saturating_sub(failed));
        }
        let fabric = self.fabric.as_mut().expect("checked above");
        fabric.generate_step(now, self.config.step, &self.timeline);
        fabric.serve_step(now, self.config.step, &self.fabric_replicas);
        self.fabric_pressure = 0.0;
        for (ordinal, pool) in self.registry.pools.iter_mut().enumerate() {
            // The fabric's pressure can exceed the legacy saturation point (deep KV
            // backlogs); clamp to the pool's own 1.5 ceiling so the configurator sees
            // one consistent scale.
            let request_pressure = fabric.pressure(ordinal).min(1.5);
            self.fabric_pressure = self.fabric_pressure.max(request_pressure);
            if request_pressure <= 0.0 {
                continue;
            }
            for pressure in &mut pool.pressure {
                *pressure = pressure.max(request_pressure);
            }
        }
    }

    /// Reconfigures SaaS instances within their thermal/power headroom (§4.3).
    fn reconfigure_instances(&mut self, now: SimTime, outside: Celsius) {
        if !self.config.policy.config_enabled() {
            return;
        }
        let configurator = InstanceConfigurator::new(0.9);
        let power_cap = self.timeline.power_cap_at(now);
        let layout = self.dc.layout();

        // Count SaaS instances per row to share row headroom.
        self.saas_per_row.fill(0);
        for pool in &self.registry.pools {
            for &server in &pool.server {
                self.saas_per_row[layout.server(server).row.index()] += 1;
            }
        }

        for endpoint_index in 0..self.registry.pools.len() {
            for position in 0..self.registry.pools[endpoint_index].len() {
                let pool = &self.registry.pools[endpoint_index];
                let vm_id = pool.vm[position];
                let server = pool.server[position];
                let current_config = pool.config[position];
                let utilization = pool.utilization[position];
                // Demand pressure is the unclamped utilization: identical to
                // `utilization` below 1.0, above it it keeps signalling the surplus so
                // the configurator upsizes under surges instead of mistaking a
                // saturated instance for one that exactly meets its demand.
                let pressure = pool.pressure[position];
                let cached_goodput = pool.goodput[position];
                let profile = self.profiles.server(server);
                let row = profile.row;

                // Thermal headroom -> per-GPU power budget.
                let inlet = profile.predicted_inlet(outside, self.prev_dc_load);
                let max_gpu_power =
                    profile.gpu_power_budget(inlet, self.profiles.thermal_headroom_target);

                // Row power headroom -> per-instance server power budget. An active
                // power cap shrinks the budget the configurator plans against, so the
                // TAPAS response to a cap window is proactive reconfiguration rather
                // than reactive throttling (×1.0 outside cap windows is bit-identical).
                let row_budget = self.profiles.row_budget(row) * power_cap;
                let row_now = self.routing_context.row_power[row.index()];
                let headroom = row_budget * 0.97 - row_now;
                let current_power = profile.predicted_power(utilization);
                let max_server_power = if headroom.value() >= 0.0 {
                    let share =
                        headroom / self.saas_per_row[row.index()].max(1) as f64;
                    Kilowatts::new((current_power + share).value().max(0.3))
                } else {
                    // Over budget (deep power cap or a demand spike): scale every
                    // instance's envelope proportionally to its current draw instead of
                    // subtracting the same absolute deficit from each — uniform
                    // subtraction zeroes the smallest instances first and collapses
                    // their SLOs while large ones barely notice.
                    let scale = (row_budget * 0.97).value() / row_now.value();
                    Kilowatts::new((current_power.value() * scale).max(0.3))
                };

                let goodput = if cached_goodput.is_nan() {
                    FALLBACK_GOODPUT
                } else {
                    cached_goodput
                };
                let limits = InstanceLimits {
                    max_gpu_power: Watts::new(max_gpu_power.value().max(1.0)),
                    max_server_power,
                    demand_tokens_per_s: pressure * goodput,
                };
                let decision = configurator.select(&current_config, &limits, &self.profiles);
                if decision.config != current_config {
                    let downtime = decision.cost.downtime_seconds();
                    let transition_until =
                        (downtime > 0.0).then(|| now + self.config.step);
                    self.registry.set_config(
                        vm_id,
                        decision.config,
                        transition_until,
                        &self.profiles,
                    );
                    self.state.set_config(vm_id, decision.config).expect("placed instance");
                    self.report.events.record_kind(
                        now,
                        EventKind::InstanceReconfigured,
                        self.labels.vm.get_or_insert_with(vm_id.0 as usize, || vm_id.to_string()),
                        downtime,
                        format!("-> {}", decision.config),
                    );
                }
            }
        }
    }

    /// Fills the per-server activity planes for the physics engine in place: each quantum
    /// writes directly into the flat SoA planes, never rebuilding per-server `Vec`s.
    fn fill_activity(&mut self, now: SimTime) {
        let layout = self.dc.layout();
        for server in layout.servers() {
            let gpus = server.spec.gpus_per_server;
            let carry = self.carryover_freq[server.id.index()];
            let index = server.id.index();
            match self.state.vm_on(server.id) {
                None => self.step_input.activity.set_idle(index),
                Some(placed) => match placed.vm.kind {
                    VmKind::Iaas { .. } => {
                        let load = self.iaas_model.load_at(&placed.vm, now);
                        let activity = self.step_input.activity.server_mut(index);
                        activity.gpu_utilization.fill(load);
                        activity.frequency_scale.fill(carry);
                        *activity.memory_boundedness = 0.5;
                    }
                    VmKind::Saas { .. } => {
                        let Some((endpoint, position)) = self.registry.lookup(placed.vm.id)
                        else {
                            self.step_input.activity.set_idle(index);
                            continue;
                        };
                        let pool = &self.registry.pools[endpoint];
                        let config = &pool.config[position];
                        let active_gpus = config.parallelism.gpus().min(gpus);
                        let util =
                            (pool.sat_util[position] * pool.utilization[position]).clamp(0.0, 1.0);
                        let freq = config.frequency.value() * carry;
                        let activity = self.step_input.activity.server_mut(index);
                        activity.gpu_utilization.fill(0.0);
                        activity.frequency_scale.fill(1.0);
                        for slot in 0..active_gpus {
                            activity.gpu_utilization[slot] = util;
                            activity.frequency_scale[slot] = freq;
                        }
                        *activity.memory_boundedness = pool.boundedness[position];
                    }
                },
            }
        }
    }

    /// One simulation step.
    fn step(&mut self, now: SimTime) {
        // Scenario weather episodes overlay the climate trace additively (the neutral
        // offset 0.0 leaves the legacy trace bit-identical).
        let outside = Celsius::new(
            self.weather.outside_temp(now).value() + self.timeline.temp_offset_at(now),
        );
        self.retire_vms(now);
        self.place_pending_vms(now);
        self.route_requests(now, outside);
        self.step_fabric(now);
        self.reconfigure_instances(now, outside);

        self.fill_activity(now);
        self.step_input.outside_temp = outside;
        // The resolved timeline's schedule merges the legacy config windows with the
        // scenario's failure events; the step's power cap rides along the same way
        // (1.0 outside cap windows keeps the engine's uncapped path untouched).
        self.timeline.failures().state_into(now, &mut self.step_input.failures);
        self.step_input.power_cap = self.timeline.power_cap_at(now);
        self.dc.evaluate_into(&self.step_input, &mut self.workspace);
        let outcome = &self.workspace.outcome;

        // Record metrics.
        self.report
            .max_gpu_temp
            .push(now, outcome.max_gpu_temp().value());
        self.report
            .peak_row_power
            .push(now, outcome.peak_row_power().value());
        self.report
            .datacenter_power
            .push(now, outcome.power.datacenter.draw.value());
        self.report
            .saas_utilization
            .push(now, self.registry.mean_utilization());

        for throttle in &outcome.thermal_throttles {
            let gpu = throttle.gpu;
            let ordinal = gpu.server.index() * self.gpus_per_server + gpu.slot;
            self.report.events.record_kind(
                now,
                EventKind::ThermalThrottle,
                self.labels.gpu.get_or_insert_with(ordinal, || gpu.to_string()),
                throttle.temperature.value() - self.report.gpu_throttle_temp_c,
                "",
            );
        }
        for (row, utilization) in outcome.power.rows.iter() {
            if utilization.is_over_budget() {
                self.report.events.record_kind(
                    now,
                    EventKind::PowerCap,
                    self.labels.row.get_or_insert_with(row.index(), || row.to_string()),
                    utilization.utilization,
                    "",
                );
            }
        }
        for (aisle, assessment) in outcome.aisle_airflow.iter() {
            if assessment.is_violated() {
                self.report.events.record_kind(
                    now,
                    EventKind::AirflowViolation,
                    self.labels.aisle.get_or_insert_with(aisle.index(), || aisle.to_string()),
                    assessment.utilization,
                    "",
                );
            }
        }

        // Carry throttling and capping into the next step's effective frequency, and let
        // unaffected servers recover.
        self.carryover_next.fill(1.0);
        for throttle in &outcome.thermal_throttles {
            let slot = &mut self.carryover_next[throttle.gpu.server.index()];
            *slot = slot.min(throttle.frequency_scale);
        }
        for directive in &outcome.power.capping {
            let slot = &mut self.carryover_next[directive.server.index()];
            *slot = slot.min(directive.power_fraction.cbrt());
        }
        std::mem::swap(&mut self.carryover_freq, &mut self.carryover_next);

        // Infrastructure state the router and configurator will see next step: straight
        // ordinal-aligned copies out of the dense assessment grids.
        for (carry, utilization) in self
            .routing_context
            .row_power
            .iter_mut()
            .zip(outcome.power.rows.values())
        {
            *carry = utilization.draw;
        }
        for (carry, assessment) in self
            .routing_context
            .aisle_airflow
            .iter_mut()
            .zip(outcome.aisle_airflow.values())
        {
            *carry = assessment.demand;
        }
        self.prev_dc_load = outcome.datacenter_load;

        // Weekly refinement of the row power templates (§4.5). The history is accumulated
        // directly in row-ordinal order, so the refinement consumes it without any
        // per-step or per-week map rebuilds.
        for (history, utilization) in
            self.row_history.iter_mut().zip(outcome.power.rows.values())
        {
            history.push((now, utilization.draw.value()));
        }
        if (now - self.last_refinement).as_days() >= 7.0 {
            Arc::make_mut(&mut self.profiles).refine_row_templates(&self.row_history);
            for samples in &mut self.row_history {
                samples.clear();
            }
            self.last_refinement = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use tapas::policy::Policy;

    #[test]
    fn smoke_test_runs_and_records_metrics() {
        let report = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
        assert_eq!(report.max_gpu_temp.len(), 24 + 1);
        assert!(report.peak_temperature_c() > 20.0);
        assert!(report.peak_row_power_kw() > 0.0);
        assert!(report.events.count(EventKind::VmPlaced) > 0);
        assert!(report.requests_served > 0);
        assert!(report.mean_quality() > 0.5);
    }

    #[test]
    fn tapas_policy_runs_on_small_cluster() {
        let mut config = ExperimentConfig::small_smoke_test();
        config.policy = Policy::Tapas;
        let report = ClusterSimulator::new(config).run();
        assert_eq!(report.policy, "TAPAS");
        assert!(report.peak_temperature_c() > 20.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
        let b = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
        assert_eq!(a.max_gpu_temp.values(), b.max_gpu_temp.values());
        assert_eq!(a.peak_row_power.values(), b.peak_row_power.values());
        assert_eq!(a.requests_served, b.requests_served);
    }

    #[test]
    fn different_policies_produce_different_trajectories() {
        let baseline = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
        let mut config = ExperimentConfig::small_smoke_test();
        config.policy = Policy::Tapas;
        let tapas = ClusterSimulator::new(config).run();
        assert_ne!(baseline.policy, tapas.policy);
        // The trajectories should not be identical (placement and routing differ).
        assert!(
            baseline.peak_row_power.values() != tapas.peak_row_power.values()
                || baseline.max_gpu_temp.values() != tapas.max_gpu_temp.values()
        );
    }

    #[test]
    fn failure_schedule_is_honoured() {
        let mut config = ExperimentConfig::small_smoke_test();
        config.failures = dc_sim::failures::FailureSchedule::none()
            .with_power_emergency(SimTime::from_minutes(30), SimTime::from_minutes(90));
        let report = ClusterSimulator::new(config).run();
        // During the emergency the reduced capacity should trigger capping on a loaded
        // cluster, or at least be recorded as events if load is high enough; the run must in
        // any case complete and keep recording.
        assert_eq!(report.max_gpu_temp.len(), 25);
    }

    #[test]
    fn out_of_window_scenario_events_do_not_change_the_run() {
        use crate::scenario::Scenario;
        let plain = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
        // Events entirely beyond the 2-hour horizon resolve to nothing.
        let scenario = Scenario::builder()
            .heatwave(1..2, 10.0)
            .surge(SimTime::from_hours(30), SimTime::from_hours(31), 3.0)
            .build()
            .expect("valid scenario");
        let staged = ClusterSimulator::new(
            ExperimentConfig::small_smoke_test().with_scenario(scenario),
        )
        .run();
        assert_eq!(
            serde_json::to_string(&plain).expect("serialize"),
            serde_json::to_string(&staged).expect("serialize"),
            "inactive scenario events must leave the run bit-identical"
        );
    }

    #[test]
    fn power_cap_window_binds_then_the_site_returns_to_its_uncapped_trajectory() {
        use crate::scenario::Scenario;
        let start = SimTime::from_minutes(30);
        let end = SimTime::from_minutes(60);
        // An idle site (no VM arrivals) under a deep cap: even idle draw exceeds 5 % of
        // the row budgets, so the cap binds hard during the window. Idle physics takes
        // no control-loop feedback, which makes the recovery assertion exact: once the
        // window closes every recorded sample must be bit-identical to the uncapped
        // run — the pre-cap digest trajectory, not merely "close to it".
        let uncapped =
            ClusterSimulator::with_arrivals(ExperimentConfig::small_smoke_test(), Vec::new())
                .run();
        let scenario = Scenario::builder()
            .power_cap(crate::scenario::SiteSelector::All, start, end, 0.05)
            .build()
            .expect("valid scenario");
        let capped = ClusterSimulator::with_arrivals(
            ExperimentConfig::small_smoke_test().with_scenario(scenario),
            Vec::new(),
        )
        .run();

        // The cap binds: over-budget rows are recorded, and only inside the window.
        let cap_events: Vec<SimTime> = capped
            .events
            .of_kind(EventKind::PowerCap)
            .map(|event| event.time)
            .collect();
        assert!(!cap_events.is_empty(), "a 5 % cap must put idle rows over budget");
        assert!(
            cap_events.iter().all(|&t| t >= start && t < end),
            "cap events must be confined to the cap window: {cap_events:?}"
        );

        // Recovery: the physical trajectory never left the uncapped one (budgets moved,
        // physics did not), so every series matches bit for bit — including after `end`.
        assert_eq!(capped.max_gpu_temp.values(), uncapped.max_gpu_temp.values());
        assert_eq!(capped.peak_row_power.values(), uncapped.peak_row_power.values());
        assert_eq!(capped.datacenter_power.values(), uncapped.datacenter_power.values());
        assert_eq!(capped.requests_served, uncapped.requests_served);
    }

    #[test]
    fn loaded_site_recovers_headroom_after_a_power_cap_window() {
        use crate::scenario::Scenario;
        let start = SimTime::from_minutes(60);
        let end = SimTime::from_minutes(90);
        let mut config = ExperimentConfig::small_smoke_test();
        config.policy = Policy::Tapas;
        let scenario = Scenario::builder()
            .power_cap(crate::scenario::SiteSelector::All, start, end, 0.4)
            .build()
            .expect("valid scenario");
        let mut sim = ClusterSimulator::new(config.with_scenario(scenario));

        // Step through the run recording the router-visible power headroom.
        let mut headroom = Vec::new();
        let mut clock = simkit::time::SimClock::new(
            simkit::time::SimDuration::from_minutes(5),
            SimTime::from_hours(2),
        );
        loop {
            let now = clock.now();
            sim.step_at(now);
            headroom.push((now, sim.site_signals().power_headroom_kw));
            if clock.tick().is_none() {
                break;
            }
        }
        let mean = |samples: &[(SimTime, f64)], lo: SimTime, hi: SimTime| {
            let picked: Vec<f64> = samples
                .iter()
                .filter(|(t, _)| *t >= lo && *t < hi)
                .map(|(_, h)| *h)
                .collect();
            picked.iter().sum::<f64>() / picked.len() as f64
        };
        let before = mean(&headroom, SimTime::from_minutes(30), start);
        let during = mean(&headroom, start, end);
        let after = mean(&headroom, end, SimTime::from_hours(2));
        // The cap visibly shrinks the headroom the geo router sees, and the site
        // recovers most of it once the window closes (recovery asserted, not assumed).
        assert!(during < before * 0.75, "cap must bite: {before} -> {during}");
        assert!(after > during, "headroom must recover after the window: {during} -> {after}");
        assert!(after > before * 0.8, "recovery must approach the pre-cap level: {before} -> {after}");

        // Once recovered, the run keeps serving and records the cap in its event log.
        let report = sim.into_report();
        assert!(report.events.count(EventKind::PowerCap) > 0);
        assert!(report.requests_served > 0);
    }

    #[test]
    fn scenario_failures_behave_exactly_like_the_legacy_schedule() {
        use crate::scenario::Scenario;
        let start = SimTime::from_minutes(30);
        let end = SimTime::from_minutes(90);
        let legacy = ClusterSimulator::new(
            ExperimentConfig::small_smoke_test().with_failures(
                dc_sim::failures::FailureSchedule::none().with_power_emergency(start, end),
            ),
        )
        .run();
        let scenario = ClusterSimulator::new(
            ExperimentConfig::small_smoke_test()
                .with_scenario(Scenario::power_emergency(start, end)),
        )
        .run();
        assert_eq!(
            serde_json::to_string(&legacy).expect("serialize"),
            serde_json::to_string(&scenario).expect("serialize"),
            "a scenario failure event must reproduce the legacy schedule bit for bit"
        );
    }

    #[test]
    fn heatwave_overlay_raises_the_temperature_trace() {
        use crate::scenario::Scenario;
        let plain = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
        let heatwave = Scenario::builder()
            .weather(
                crate::scenario::SiteSelector::All,
                SimTime::ZERO,
                SimTime::from_hours(2),
                12.0,
            )
            .build()
            .expect("valid scenario");
        let hot = ClusterSimulator::new(
            ExperimentConfig::small_smoke_test().with_scenario(heatwave),
        )
        .run();
        assert!(
            hot.peak_temperature_c() > plain.peak_temperature_c() + 2.0,
            "heatwave {} vs plain {}",
            hot.peak_temperature_c(),
            plain.peak_temperature_c()
        );
    }

    #[test]
    fn surge_scales_served_request_volume() {
        use crate::scenario::Scenario;
        let plain = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
        let surge = Scenario::builder()
            .surge(SimTime::ZERO, SimTime::from_hours(2), 2.0)
            .build()
            .expect("valid scenario");
        let surged = ClusterSimulator::new(
            ExperimentConfig::small_smoke_test().with_scenario(surge),
        )
        .run();
        assert!(
            surged.requests_served as f64 > plain.requests_served as f64 * 1.5,
            "surge {} vs plain {}",
            surged.requests_served,
            plain.requests_served
        );
    }

    #[test]
    #[should_panic(expected = "demand multiplier")]
    fn invalid_hand_built_scenarios_are_rejected_at_build() {
        use crate::scenario::{ScenarioEvent, SiteSelector};
        // Mutating the public events field bypasses ScenarioBuilder::build, so the
        // simulator re-checks the invariants before resolving the timeline.
        let mut config = ExperimentConfig::small_smoke_test();
        config.scenario.events.push(ScenarioEvent::Surge {
            site: SiteSelector::All,
            start: SimTime::ZERO,
            end: SimTime::from_hours(1),
            endpoint: None,
            multiplier: 0.0,
        });
        let _ = ClusterSimulator::new(config);
    }

    #[test]
    fn replaying_the_generated_trace_reproduces_the_run() {
        let config = ExperimentConfig::small_smoke_test();
        let catalog = config.endpoint_catalog();
        let trace = config.vm_stream(&catalog, 1.0);
        let replayed = ClusterSimulator::with_arrivals(config.clone(), trace).run();
        let generated = ClusterSimulator::new(config).run();
        assert_eq!(
            serde_json::to_string(&replayed).expect("serialize"),
            serde_json::to_string(&generated).expect("serialize"),
            "replaying the generated trace must be bit-identical to generating it"
        );
    }

    #[test]
    fn registry_tracks_placements_and_retirements() {
        let mut config = ExperimentConfig::small_smoke_test();
        config.policy = Policy::Tapas;
        let mut sim = ClusterSimulator::new(config);
        let mut clock = SimClock::new(sim.config.step, sim.config.duration);
        loop {
            let now = clock.now();
            sim.step(now);
            // Registry and cluster state must agree after every step.
            let saas_in_state = sim.state.placed().filter(|p| p.vm.kind.is_saas()).count();
            assert_eq!(sim.registry.instance_count(), saas_in_state);
            for (endpoint_index, pool) in sim.registry.pools.iter().enumerate() {
                // Every column must stay aligned with the vm column.
                let n = pool.vm.len();
                assert_eq!(pool.server.len(), n);
                assert_eq!(pool.outstanding.len(), n);
                assert_eq!(pool.utilization.len(), n);
                assert_eq!(pool.in_transition.len(), n);
                assert_eq!(pool.recent.len(), n);
                assert_eq!(pool.config.len(), n);
                assert_eq!(pool.goodput.len(), n);
                assert_eq!(pool.sat_util.len(), n);
                assert_eq!(pool.boundedness.len(), n);
                assert_eq!(pool.transition_until.len(), n);
                assert_eq!(pool.offered.len(), n);
                assert_eq!(pool.risky.len(), n);
                for (position, &vm) in pool.vm.iter().enumerate() {
                    assert_eq!(
                        sim.registry.lookup(vm),
                        Some((endpoint_index, position)),
                        "index maps must stay consistent"
                    );
                    assert_eq!(sim.state.server_of(vm), Some(pool.server[position]));
                }
            }
            if clock.tick().is_none() {
                break;
            }
        }
    }
}
