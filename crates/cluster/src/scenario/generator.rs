//! Seeded adversarial scenario generation.
//!
//! The Table 2 emergency drills exercise two hand-written failure windows; a robustness
//! benchmark needs *arbitrary* compositions of heatwaves, cold snaps, grid-price spikes,
//! rolling infrastructure failures, operator power caps and demand surges. This module
//! generates such compositions deterministically: [`generate`] is a pure function of
//! `(seed, GeneratorConfig)`, every stochastic choice draws from a [`SimRng`], and the
//! result always passes [`Scenario::validate`] by construction (fractions clamped into
//! `(0, 1]`, windows non-empty and inside the horizon, site ordinals bounded by the
//! configured fleet size).
//!
//! # Determinism rules
//!
//! * Every event family (weather, price, failures, caps, demand) draws from its own
//!   child stream derived from the seed by a domain label, so changing how many events
//!   one family emits never shifts another family's draws.
//! * Events are appended family by family in a fixed order; the timeline order of a
//!   generated scenario is therefore stable across runs, platforms and feature builds.
//! * No wall-clock, no global state: the same `(seed, config)` pair yields a scenario
//!   that serializes to identical bytes everywhere (pinned by the golden-artifact test).

use super::{Scenario, ScenarioEvent, SiteSelector};
use dc_sim::failures::FailureKind;
use dc_sim::ids::{AisleId, UpsId};
use serde::{Deserialize, Serialize};
use simkit::rng::SimRng;
use simkit::time::SimTime;
use workload::endpoints::EndpointId;

/// How hard the generated scenario leans on the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntensityTier {
    /// Occasional single-digit weather offsets, shallow caps, no compound failures.
    Mild,
    /// Multiple overlapping episodes, deep price spikes, guaranteed failures and caps.
    Severe,
    /// Everything at once: rolling failures, sub-50 % caps, demand several times nominal.
    Adversarial,
}

impl IntensityTier {
    /// All tiers, mild to adversarial.
    pub const ALL: [IntensityTier; 3] =
        [IntensityTier::Mild, IntensityTier::Severe, IntensityTier::Adversarial];

    /// A short display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            IntensityTier::Mild => "mild",
            IntensityTier::Severe => "severe",
            IntensityTier::Adversarial => "adversarial",
        }
    }
}

/// The shape of the world a generated scenario must fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Intensity tier.
    pub tier: IntensityTier,
    /// Number of fleet sites events may target (single-DC experiments use 1).
    pub sites: usize,
    /// The run horizon; every generated window lies inside `[0, duration)`.
    pub duration: SimTime,
    /// Endpoint catalog size for per-endpoint demand ramps.
    pub endpoints: usize,
}

impl GeneratorConfig {
    /// A configuration for `sites` sites over `duration` at the given tier, with the
    /// default 4-endpoint catalog of the experiment presets.
    #[must_use]
    pub fn new(tier: IntensityTier, sites: usize, duration: SimTime) -> Self {
        Self { tier, sites, duration, endpoints: 4 }
    }
}

/// Per-tier knobs: event counts `(min, max)` (inclusive), magnitude ranges, window
/// lengths as fractions of the horizon.
struct TierParams {
    weather_events: (usize, usize),
    weather_delta_c: (f64, f64),
    cold_snap_chance: f64,
    price_events: (usize, usize),
    price_per_mwh: (f64, f64),
    failure_events: (usize, usize),
    failure_fraction: (f64, f64),
    rolling_failures: bool,
    cap_events: (usize, usize),
    cap_fraction: (f64, f64),
    surge_events: (usize, usize),
    surge_multiplier: (f64, f64),
    ramp_chance: f64,
    replica_failure_events: (usize, usize),
    replica_failure_count: (usize, usize),
    replica_endpoint_chance: f64,
    window_frac: (f64, f64),
}

fn params(tier: IntensityTier) -> TierParams {
    match tier {
        IntensityTier::Mild => TierParams {
            weather_events: (1, 2),
            weather_delta_c: (2.0, 6.0),
            cold_snap_chance: 0.2,
            price_events: (1, 2),
            price_per_mwh: (60.0, 150.0),
            failure_events: (0, 1),
            failure_fraction: (0.9, 0.97),
            rolling_failures: false,
            cap_events: (0, 1),
            cap_fraction: (0.9, 0.97),
            surge_events: (1, 2),
            surge_multiplier: (1.1, 1.5),
            ramp_chance: 0.25,
            replica_failure_events: (0, 0),
            replica_failure_count: (1, 1),
            replica_endpoint_chance: 0.5,
            window_frac: (0.05, 0.15),
        },
        IntensityTier::Severe => TierParams {
            weather_events: (2, 4),
            weather_delta_c: (5.0, 12.0),
            cold_snap_chance: 0.3,
            price_events: (2, 4),
            price_per_mwh: (150.0, 400.0),
            failure_events: (1, 3),
            failure_fraction: (0.75, 0.92),
            rolling_failures: false,
            cap_events: (1, 3),
            cap_fraction: (0.7, 0.9),
            surge_events: (2, 4),
            surge_multiplier: (1.4, 2.2),
            ramp_chance: 0.5,
            replica_failure_events: (0, 1),
            replica_failure_count: (2, 6),
            replica_endpoint_chance: 0.5,
            window_frac: (0.1, 0.3),
        },
        IntensityTier::Adversarial => TierParams {
            weather_events: (3, 6),
            weather_delta_c: (8.0, 18.0),
            cold_snap_chance: 0.35,
            price_events: (3, 6),
            price_per_mwh: (250.0, 900.0),
            failure_events: (2, 5),
            failure_fraction: (0.55, 0.85),
            rolling_failures: true,
            cap_events: (2, 5),
            cap_fraction: (0.45, 0.8),
            surge_events: (3, 6),
            surge_multiplier: (1.8, 3.5),
            ramp_chance: 0.6,
            replica_failure_events: (1, 3),
            // Kill counts are sized against realistic pool depths (tens of replicas):
            // the worst draws wipe out an endpoint's entire pool, which the fabric
            // clamps to one virtual replica — the KV commitment then exceeds capacity
            // and the scheduler's preempt/evict/requeue path runs under real load.
            replica_failure_count: (6, 24),
            replica_endpoint_chance: 0.5,
            window_frac: (0.15, 0.5),
        },
    }
}

/// Draws an event count from an inclusive `(min, max)` range.
fn count(rng: &mut SimRng, range: (usize, usize)) -> usize {
    rng.uniform_usize(range.0, range.1 + 1)
}

/// Draws a `[start, end)` window inside `[0, duration)`, non-empty by construction.
fn window(rng: &mut SimRng, duration_minutes: u64, frac: (f64, f64)) -> (SimTime, SimTime) {
    let length = ((duration_minutes as f64 * rng.uniform(frac.0, frac.1)) as u64).max(1);
    // `start <= duration - 2`, so `end >= start + 1` even after clamping to the horizon.
    let start = rng.uniform_usize(0, (duration_minutes - 1) as usize) as u64;
    let end = (start + length).min(duration_minutes);
    (SimTime::from_minutes(start), SimTime::from_minutes(end))
}

/// Draws a site selector: fleet-wide with 40 % probability, one bounded ordinal
/// otherwise (single-site worlds always draw `All`, keeping the stream aligned).
fn selector(rng: &mut SimRng, sites: usize) -> SiteSelector {
    if sites <= 1 || rng.chance(0.4) {
        SiteSelector::All
    } else {
        SiteSelector::Site(rng.uniform_usize(0, sites))
    }
}

/// Clamps a drawn fraction into the validated `(0, 1]` interval.
fn clamp_fraction(fraction: f64) -> f64 {
    fraction.clamp(f64::MIN_POSITIVE, 1.0)
}

/// Generates a deterministic scenario for `(seed, config)`. The result always passes
/// [`Scenario::validate`] against `config.sites` — validity is by construction, and
/// double-checked here so a parameter regression fails loudly at the source.
///
/// # Panics
/// Panics if `config.duration` is shorter than two minutes, `config.sites` is zero, or
/// (in debug builds only, as a backstop) a generated event fails validation.
#[must_use]
pub fn generate(seed: u64, config: &GeneratorConfig) -> Scenario {
    assert!(config.sites > 0, "scenario generation needs at least one site");
    let duration_minutes = config.duration.as_minutes();
    assert!(duration_minutes >= 2, "scenario generation needs a horizon of >= 2 minutes");
    let p = params(config.tier);
    let root = SimRng::seed_from(seed);
    let mut events: Vec<ScenarioEvent> = Vec::new();

    // Weather episodes: heatwaves with an occasional cold snap mixed in.
    let mut rng = root.derive("generator.weather");
    for _ in 0..count(&mut rng, p.weather_events) {
        let (start, end) = window(&mut rng, duration_minutes, p.window_frac);
        let magnitude = rng.uniform(p.weather_delta_c.0, p.weather_delta_c.1);
        let delta_c = if rng.chance(p.cold_snap_chance) { -magnitude } else { magnitude };
        events.push(ScenarioEvent::Weather { site: selector(&mut rng, config.sites), start, end, delta_c });
    }

    // Grid-price spikes (overlaps overwrite; later events win, as resolution defines).
    let mut rng = root.derive("generator.price");
    for _ in 0..count(&mut rng, p.price_events) {
        let (start, end) = window(&mut rng, duration_minutes, p.window_frac);
        let price_per_mwh = rng.uniform(p.price_per_mwh.0, p.price_per_mwh.1);
        events.push(ScenarioEvent::GridPrice { site: selector(&mut rng, config.sites), start, end, price_per_mwh });
    }

    // Infrastructure failures: UPS, cooling-device and single-aisle AHU outages. The
    // adversarial tier rolls consecutive windows across site ordinals, modeling a
    // failure cascade marching through the fleet.
    let mut rng = root.derive("generator.failures");
    let failure_count = count(&mut rng, p.failure_events);
    for index in 0..failure_count {
        let (start, end) = window(&mut rng, duration_minutes, p.window_frac);
        let fraction = clamp_fraction(rng.uniform(p.failure_fraction.0, p.failure_fraction.1));
        let site = if p.rolling_failures && config.sites > 1 {
            SiteSelector::Site(index % config.sites)
        } else {
            selector(&mut rng, config.sites)
        };
        let kind = match rng.weighted_index(&[3.0, 2.0, 1.0]) {
            0 => FailureKind::UpsFailure { ups: UpsId::new(0), capacity_fraction: fraction },
            1 => FailureKind::CoolingDeviceFailure { capacity_fraction: fraction },
            // Aisle 0 exists in every layout; a single failed unit keeps the outage
            // valid regardless of the aisle's AHU provisioning.
            _ => FailureKind::AhuFailure { aisle: AisleId::new(0), failed_units: 1 },
        };
        events.push(ScenarioEvent::Failure { site, start, end, kind });
    }

    // Operator power-cap directives (min-composed at resolution when they overlap).
    let mut rng = root.derive("generator.caps");
    for _ in 0..count(&mut rng, p.cap_events) {
        let (start, end) = window(&mut rng, duration_minutes, p.window_frac);
        let fraction = clamp_fraction(rng.uniform(p.cap_fraction.0, p.cap_fraction.1));
        events.push(ScenarioEvent::PowerCap { site: selector(&mut rng, config.sites), start, end, fraction });
    }

    // Demand shaping: site-wide surges plus per-endpoint ramps.
    let mut rng = root.derive("generator.demand");
    for _ in 0..count(&mut rng, p.surge_events) {
        let (start, end) = window(&mut rng, duration_minutes, p.window_frac);
        let multiplier = rng.uniform(p.surge_multiplier.0, p.surge_multiplier.1);
        let endpoint = (config.endpoints > 0 && rng.chance(p.ramp_chance))
            .then(|| EndpointId(rng.uniform_usize(0, config.endpoints) as u64));
        events.push(ScenarioEvent::Surge { site: selector(&mut rng, config.sites), start, end, endpoint, multiplier });
    }

    // Serving-replica outages feeding the request fabric's preemption path. The family
    // has its own derived stream, appended after every pre-existing family, so scenarios
    // from earlier revisions keep their exact event prefix and RNG draws.
    let mut rng = root.derive("generator.replica-failures");
    for _ in 0..count(&mut rng, p.replica_failure_events) {
        let (start, end) = window(&mut rng, duration_minutes, p.window_frac);
        let replicas = count(&mut rng, p.replica_failure_count).max(1) as u32;
        let endpoint = (config.endpoints > 0 && rng.chance(p.replica_endpoint_chance))
            .then(|| EndpointId(rng.uniform_usize(0, config.endpoints) as u64));
        events.push(ScenarioEvent::ReplicaFailure {
            site: selector(&mut rng, config.sites),
            start,
            end,
            endpoint,
            replicas,
        });
    }

    let mut rng = root.derive("generator.price.base");
    let scenario =
        Scenario { base_grid_price_per_mwh: rng.uniform(30.0, 60.0), events };
    debug_assert!(
        scenario.validate(config.sites).is_ok(),
        "generated scenarios must be valid by construction: {:?}",
        scenario.validate(config.sites)
    );
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(tier: IntensityTier, sites: usize) -> GeneratorConfig {
        GeneratorConfig::new(tier, sites, SimTime::from_days(2))
    }

    #[test]
    fn same_seed_generates_byte_identical_scenarios() {
        for tier in IntensityTier::ALL {
            let a = generate(42, &config(tier, 3));
            let b = generate(42, &config(tier, 3));
            assert_eq!(a, b);
            assert_eq!(
                serde_json::to_string(&a).expect("serialize"),
                serde_json::to_string(&b).expect("serialize")
            );
        }
    }

    #[test]
    fn different_seeds_generate_different_scenarios() {
        let a = generate(1, &config(IntensityTier::Adversarial, 3));
        let b = generate(2, &config(IntensityTier::Adversarial, 3));
        assert_ne!(a, b);
    }

    #[test]
    fn every_tier_and_seed_is_valid_by_construction() {
        for tier in IntensityTier::ALL {
            for sites in [1, 3, 8] {
                for seed in 0..50 {
                    let scenario = generate(seed, &config(tier, sites));
                    scenario
                        .validate(sites)
                        .unwrap_or_else(|error| panic!("{tier:?}/{sites}/{seed}: {error}"));
                    for event in &scenario.events {
                        if let SiteSelector::Site(site) = event.site() {
                            assert!(site < sites);
                        }
                        let (start, end) = event.window();
                        assert!(start < end);
                        assert!(end <= SimTime::from_days(2));
                    }
                }
            }
        }
    }

    #[test]
    fn adversarial_scenarios_guarantee_failures_and_caps() {
        for seed in 0..20 {
            let scenario = generate(seed, &config(IntensityTier::Adversarial, 3));
            let caps = scenario
                .events
                .iter()
                .filter(|e| matches!(e, ScenarioEvent::PowerCap { .. }))
                .count();
            let failures = scenario
                .events
                .iter()
                .filter(|e| matches!(e, ScenarioEvent::Failure { .. }))
                .count();
            assert!(caps >= 2, "seed {seed} produced {caps} caps");
            assert!(failures >= 2, "seed {seed} produced {failures} failures");
            assert!(scenario.events.len() >= 13);
        }
    }

    #[test]
    fn adversarial_scenarios_always_include_replica_failures() {
        for seed in 0..20 {
            let scenario = generate(seed, &config(IntensityTier::Adversarial, 3));
            let replica_failures = scenario
                .events
                .iter()
                .filter(|e| matches!(e, ScenarioEvent::ReplicaFailure { .. }))
                .count();
            assert!(
                (1..=3).contains(&replica_failures),
                "seed {seed} produced {replica_failures} replica failures"
            );
            // The family is appended last: the event prefix matches what older
            // generator revisions produced, keeping their digests bit-identical.
            let first = scenario
                .events
                .iter()
                .position(|e| matches!(e, ScenarioEvent::ReplicaFailure { .. }))
                .expect("at least one replica failure");
            assert!(scenario.events[first..]
                .iter()
                .all(|e| matches!(e, ScenarioEvent::ReplicaFailure { .. })));
        }
        // The mild tier never sheds replicas.
        for seed in 0..20 {
            let scenario = generate(seed, &config(IntensityTier::Mild, 3));
            assert!(!scenario
                .events
                .iter()
                .any(|e| matches!(e, ScenarioEvent::ReplicaFailure { .. })));
        }
    }

    #[test]
    fn tiers_escalate_in_event_count() {
        let mean = |tier| -> f64 {
            (0..30)
                .map(|seed| generate(seed, &config(tier, 3)).events.len())
                .sum::<usize>() as f64
                / 30.0
        };
        assert!(mean(IntensityTier::Mild) < mean(IntensityTier::Severe));
        assert!(mean(IntensityTier::Severe) < mean(IntensityTier::Adversarial));
    }

    #[test]
    fn single_site_worlds_only_target_all() {
        for seed in 0..20 {
            let scenario = generate(seed, &config(IntensityTier::Severe, 1));
            assert!(scenario.events.iter().all(|e| e.site() == SiteSelector::All));
        }
    }

    #[test]
    fn generated_scenarios_resolve_and_cap_windows_land() {
        let scenario = generate(7, &config(IntensityTier::Adversarial, 3));
        let timeline = scenario.resolve(
            0,
            SimTime::from_days(2),
            simkit::time::SimDuration::from_minutes(10),
            4,
            &dc_sim::failures::FailureSchedule::none(),
        );
        assert!(timeline.power_caps().iter().all(|&f| f > 0.0 && f <= 1.0));
        assert!(timeline.grid_prices().iter().all(|&p| p.is_finite() && p >= 0.0));
    }
}
