//! The scenario layer: typed, time-indexed event timelines for experiments.
//!
//! TAPAS's evaluation (§5) is a matrix of *scenarios* — heatwaves, UPS/PDU failures
//! (Table 2), diurnal and bursty demand, oversubscription — and related work adds grid
//! energy price and carbon intensity as first-class scheduling inputs. Instead of growing
//! [`crate::experiment::ExperimentConfig`] a field per scenario, experiments compose a
//! [`Scenario`]: an ordered list of [`ScenarioEvent`]s, each active over a window of
//! simulated time and targeted at one site or the whole fleet ([`SiteSelector`]).
//!
//! # Event kinds
//!
//! * **Weather episodes** — additive overlays on the outside-temperature model
//!   (heatwave `> 0`, cold snap `< 0`); the climate presets stay untouched.
//! * **Grid price** — $/MWh curves per site, surfaced to the geo router through
//!   [`tapas::geo::SiteSignals::grid_price_per_mwh`] so placement can weigh energy cost
//!   alongside power headroom and thermal slack.
//! * **Infrastructure failures** — generalizes [`dc_sim::failures::FailureSchedule`] with
//!   per-site targeting; scenario failure windows merge with a config's legacy schedule.
//! * **Demand shaping** — multiplicative surges on SaaS request rates, fleet-wide or per
//!   endpoint (trace replay enters through
//!   [`crate::simulator::ClusterSimulator::with_arrivals`]).
//! * **Power caps** — operator directives (modeled on rack-level power-cap operators)
//!   that clamp every row and UPS budget of the targeted site(s) to a fraction of
//!   provisioned capacity for a window. Unlike failures, a cap is not an outage: the
//!   infrastructure is healthy but the site must live under a reduced envelope (grid
//!   curtailment, demand-response, maintenance derating).
//!
//! # Resolution
//!
//! Before a run starts the scenario is *resolved* once into a [`ResolvedTimeline`]: dense
//! per-step vectors (temperature offset, grid price, demand multipliers) indexed by step
//! ordinal, plus the merged failure schedule. The per-step hot path then performs only
//! index math — no maps, no allocation — per the dense-telemetry contract. Resolution is
//! a pure function of the scenario (no RNG): events apply in insertion order, weather
//! offsets accumulate additively, demand multipliers multiplicatively, price events
//! overwrite their window (later events win), failure windows collapse through
//! [`dc_sim::failures::FailureState`]'s most-severe rules, and overlapping power caps
//! min-compose (the most restrictive cap wins). In the engine a step's cap then
//! *multiplies* the failure-derived capacity fractions, so a UPS failure under a cap is
//! strictly worse than either alone.
//!
//! # Example
//!
//! ```
//! use cluster_sim::scenario::Scenario;
//! use simkit::time::SimTime;
//!
//! let scenario = Scenario::builder()
//!     .heatwave(3..5, 8.0)                                          // fleet-wide, days 3–5
//!     .grid_price_spike(1, SimTime::from_days(2), SimTime::from_days(3), 280.0)
//!     .fail_ups(0, SimTime::from_hours(50), SimTime::from_hours(53), 0.75)
//!     .surge(SimTime::from_days(4), SimTime::from_days(5), 1.8)
//!     .build()
//!     .expect("valid scenario");
//! assert_eq!(scenario.events.len(), 4);
//! assert!(scenario.validate(3).is_ok());
//! assert!(scenario.validate(1).is_err()); // events target sites 0 and 1
//! ```

pub mod generator;

use crate::metrics::RunReport;
use dc_sim::failures::{FailureKind, FailureSchedule, FailureWindow};
use dc_sim::ids::{AisleId, UpsId};
use serde::{Deserialize, Serialize};
use simkit::time::{SimDuration, SimTime};
use std::fmt;
use std::ops::Range;
use workload::endpoints::EndpointId;

/// Default grid energy price ($/MWh) every site pays when the scenario does not override
/// it. With no price events every site pays the same price, the geo router's price spread
/// is zero, and routing is bit-identical to a price-less fleet.
pub const DEFAULT_GRID_PRICE_PER_MWH: f64 = 40.0;

/// Which site(s) of a fleet an event applies to. A standalone single-datacenter
/// experiment is site 0 of a 1-site fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteSelector {
    /// The event applies to every site.
    #[default]
    All,
    /// The event applies to one site ordinal.
    Site(usize),
}

impl SiteSelector {
    /// Returns `true` if the selector covers `site`.
    #[must_use]
    pub fn matches(self, site: usize) -> bool {
        match self {
            SiteSelector::All => true,
            SiteSelector::Site(target) => target == site,
        }
    }
}

impl From<usize> for SiteSelector {
    fn from(site: usize) -> Self {
        SiteSelector::Site(site)
    }
}

/// One typed entry of a scenario's event timeline, active during `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// Additive outside-temperature overlay in °C (heatwave `> 0`, cold snap `< 0`).
    /// Overlapping weather events sum.
    Weather {
        /// Affected site(s).
        site: SiteSelector,
        /// Start of the episode (inclusive).
        start: SimTime,
        /// End of the episode (exclusive).
        end: SimTime,
        /// Temperature delta added to the climate model's trace.
        delta_c: f64,
    },
    /// Grid energy price override in $/MWh. Overlapping price events overwrite — the
    /// later event in timeline order wins.
    GridPrice {
        /// Affected site(s).
        site: SiteSelector,
        /// Start of the pricing window (inclusive).
        start: SimTime,
        /// End of the pricing window (exclusive).
        end: SimTime,
        /// Price during the window.
        price_per_mwh: f64,
    },
    /// Infrastructure failure window (generalizes
    /// [`dc_sim::failures::FailureSchedule`] with per-site targeting). Overlapping
    /// failures collapse to the most severe residual per entity.
    Failure {
        /// Affected site(s).
        site: SiteSelector,
        /// Start of the outage (inclusive).
        start: SimTime,
        /// End of the outage (exclusive).
        end: SimTime,
        /// What failed.
        kind: FailureKind,
    },
    /// Operator power-cap directive: row and UPS budgets of the targeted site(s) are
    /// clamped to `fraction` of provisioned capacity during the window. Overlapping
    /// caps min-compose (the most restrictive fraction wins).
    PowerCap {
        /// Affected site(s).
        site: SiteSelector,
        /// Start of the cap window (inclusive).
        start: SimTime,
        /// End of the cap window (exclusive).
        end: SimTime,
        /// Budget clamp in `(0, 1]`: effective budgets = provisioned × `fraction`.
        fraction: f64,
    },
    /// Demand multiplier on SaaS request rates. Overlapping surges multiply.
    Surge {
        /// Affected site(s).
        site: SiteSelector,
        /// Start of the surge (inclusive).
        start: SimTime,
        /// End of the surge (exclusive).
        end: SimTime,
        /// `None` scales every endpoint; `Some(id)` ramps one endpoint only.
        endpoint: Option<EndpointId>,
        /// Request-rate multiplier (`> 1` surge, `< 1` trough).
        multiplier: f64,
    },
    /// Serving-replica outage: `replicas` instances of the targeted endpoint(s) are
    /// unavailable to the request fabric during the window. Unlike [`Self::Failure`]
    /// this does not touch the power/cooling hierarchy — it models crashed or drained
    /// serving processes, so only the request fabric's effective replica count shrinks
    /// (in-flight sequences on the lost replicas are preempted and requeued).
    /// Overlapping windows sum their replica counts.
    ReplicaFailure {
        /// Affected site(s).
        site: SiteSelector,
        /// Start of the outage (inclusive).
        start: SimTime,
        /// End of the outage (exclusive).
        end: SimTime,
        /// `None` hits every endpoint; `Some(id)` kills replicas of one endpoint only.
        endpoint: Option<EndpointId>,
        /// Number of replicas lost for the window (must be `> 0`).
        replicas: u32,
    },
}

impl ScenarioEvent {
    /// The site(s) the event targets.
    #[must_use]
    pub fn site(&self) -> SiteSelector {
        match *self {
            ScenarioEvent::Weather { site, .. }
            | ScenarioEvent::GridPrice { site, .. }
            | ScenarioEvent::Failure { site, .. }
            | ScenarioEvent::PowerCap { site, .. }
            | ScenarioEvent::Surge { site, .. }
            | ScenarioEvent::ReplicaFailure { site, .. } => site,
        }
    }

    /// The `[start, end)` window the event is active in.
    #[must_use]
    pub fn window(&self) -> (SimTime, SimTime) {
        match *self {
            ScenarioEvent::Weather { start, end, .. }
            | ScenarioEvent::GridPrice { start, end, .. }
            | ScenarioEvent::Failure { start, end, .. }
            | ScenarioEvent::PowerCap { start, end, .. }
            | ScenarioEvent::Surge { start, end, .. }
            | ScenarioEvent::ReplicaFailure { start, end, .. } => (start, end),
        }
    }

    fn with_site(mut self, selector: SiteSelector) -> Self {
        match &mut self {
            ScenarioEvent::Weather { site, .. }
            | ScenarioEvent::GridPrice { site, .. }
            | ScenarioEvent::Failure { site, .. }
            | ScenarioEvent::PowerCap { site, .. }
            | ScenarioEvent::Surge { site, .. }
            | ScenarioEvent::ReplicaFailure { site, .. } => *site = selector,
        }
        self
    }
}

/// Why a scenario or fleet configuration is invalid. The single typed validation error
/// for the experiment surface: [`Scenario::validate`],
/// [`crate::experiment::ExperimentConfig::validate`] and
/// [`crate::experiment::FleetConfig::check`] all return it.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A fleet was configured with no sites.
    NoSites,
    /// A pinned geo policy names a site ordinal outside the fleet.
    PinnedSiteOutOfRange {
        /// The pinned site ordinal.
        site: usize,
        /// Number of sites in the fleet.
        sites: usize,
    },
    /// The fleet's arrival scale is zero, negative or non-finite.
    NonPositiveArrivalScale {
        /// The offending scale.
        scale: f64,
    },
    /// A round-robin arrival share is negative or non-finite.
    InvalidArrivalShare {
        /// The offending site ordinal.
        site: usize,
        /// The offending share.
        share: f64,
    },
    /// Every round-robin arrival share is zero.
    NoPositiveArrivalShare,
    /// An event targets a site ordinal outside the fleet.
    SiteOutOfRange {
        /// Index of the offending event in the timeline.
        event: usize,
        /// The targeted site ordinal.
        site: usize,
        /// Number of sites in the fleet.
        sites: usize,
    },
    /// An event's window is empty (`start >= end`).
    EmptyWindow {
        /// Index of the offending event in the timeline.
        event: usize,
    },
    /// A weather overlay's temperature delta is not finite.
    NonFiniteWeatherDelta {
        /// Index of the offending event in the timeline.
        event: usize,
    },
    /// A grid price (event or base) is negative or non-finite.
    InvalidPrice {
        /// Index of the offending event, or `None` for the base price.
        event: Option<usize>,
        /// The offending price.
        price: f64,
    },
    /// A failure's residual capacity fraction is outside `(0, 1]` or non-finite.
    InvalidCapacityFraction {
        /// Index of the offending event in the timeline.
        event: usize,
        /// The offending fraction.
        fraction: f64,
    },
    /// An AHU failure fails zero units.
    NoFailedUnits {
        /// Index of the offending event in the timeline.
        event: usize,
    },
    /// A power-cap fraction is outside `(0, 1]` or non-finite.
    InvalidPowerCapFraction {
        /// Index of the offending event in the timeline.
        event: usize,
        /// The offending fraction.
        fraction: f64,
    },
    /// A surge multiplier is zero, negative or non-finite.
    InvalidMultiplier {
        /// Index of the offending event in the timeline.
        event: usize,
        /// The offending multiplier.
        multiplier: f64,
    },
    /// A replica-failure event kills zero replicas.
    NoFailedReplicas {
        /// Index of the offending event in the timeline.
        event: usize,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NoSites => write!(f, "a fleet needs at least one site"),
            ScenarioError::PinnedSiteOutOfRange { site, sites } => {
                write!(f, "pinned site {site} out of range for a {sites}-site fleet")
            }
            ScenarioError::NonPositiveArrivalScale { scale } => {
                write!(f, "arrival scale must be positive, got {scale}")
            }
            ScenarioError::InvalidArrivalShare { site, share } => write!(
                f,
                "arrival shares must be finite and non-negative, site {site} has {share}"
            ),
            ScenarioError::NoPositiveArrivalShare => {
                write!(f, "at least one site must have a positive arrival share")
            }
            ScenarioError::SiteOutOfRange { event, site, sites } => write!(
                f,
                "event {event} targets site {site}, out of range for a {sites}-site fleet"
            ),
            ScenarioError::EmptyWindow { event } => {
                write!(f, "event {event} has an empty window (start must precede end)")
            }
            ScenarioError::NonFiniteWeatherDelta { event } => {
                write!(f, "event {event} has a non-finite temperature delta")
            }
            ScenarioError::InvalidPrice { event: Some(event), price } => {
                write!(f, "event {event} has an invalid grid price {price}")
            }
            ScenarioError::InvalidPrice { event: None, price } => {
                write!(f, "base grid price {price} must be finite and non-negative")
            }
            ScenarioError::InvalidCapacityFraction { event, fraction } => write!(
                f,
                "event {event} has capacity fraction {fraction}, expected within (0, 1]"
            ),
            ScenarioError::NoFailedUnits { event } => {
                write!(f, "event {event} is an AHU failure that fails zero units")
            }
            ScenarioError::InvalidPowerCapFraction { event, fraction } => write!(
                f,
                "event {event} has power-cap fraction {fraction}, expected within (0, 1]"
            ),
            ScenarioError::InvalidMultiplier { event, multiplier } => write!(
                f,
                "event {event} has an invalid demand multiplier {multiplier}"
            ),
            ScenarioError::NoFailedReplicas { event } => {
                write!(f, "event {event} is a replica failure that kills zero replicas")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A typed, time-indexed experiment scenario: the base grid price plus an ordered event
/// timeline. Compose one into an [`crate::experiment::ExperimentConfig`] (the empty
/// default scenario reproduces every legacy run bit for bit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Grid energy price ($/MWh) outside any [`ScenarioEvent::GridPrice`] window.
    pub base_grid_price_per_mwh: f64,
    /// The event timeline, applied in insertion order.
    pub events: Vec<ScenarioEvent>,
}

impl Default for Scenario {
    fn default() -> Self {
        Self { base_grid_price_per_mwh: DEFAULT_GRID_PRICE_PER_MWH, events: Vec::new() }
    }
}

impl Scenario {
    /// Starts a fluent scenario builder.
    #[must_use]
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder { scenario: Scenario::default() }
    }

    /// Returns `true` when the scenario has no events (the legacy, event-free shape).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The paper's power emergency (§5.4, Table 2): a UPS failure leaving 75 % of power
    /// capacity during `[start, end)`.
    #[must_use]
    pub fn power_emergency(start: SimTime, end: SimTime) -> Self {
        Scenario::builder()
            .fail_ups(SiteSelector::All, start, end, 0.75)
            .build()
            .expect("preset windows are valid")
    }

    /// The paper's thermal emergency (§5.4, Table 2): a cooling-device failure leaving
    /// 90 % of cooling capacity during `[start, end)`.
    #[must_use]
    pub fn thermal_emergency(start: SimTime, end: SimTime) -> Self {
        Scenario::builder()
            .fail_cooling(SiteSelector::All, start, end, 0.9)
            .build()
            .expect("preset windows are valid")
    }

    /// End of the last *emergency* window — failures and power caps, the events that can
    /// force throttling or capping. The robustness harness measures recovery time as how
    /// long after this a policy keeps logging stress events
    /// ([`crate::metrics::RunReport::last_stress_event_minute`]). `None` when the
    /// scenario contains no emergencies.
    #[must_use]
    pub fn last_emergency_end(&self) -> Option<SimTime> {
        self.events
            .iter()
            .filter(|event| {
                matches!(
                    event,
                    ScenarioEvent::Failure { .. } | ScenarioEvent::PowerCap { .. }
                )
            })
            .map(|event| event.window().1)
            .max_by_key(|end| end.as_minutes())
    }

    /// Validates the site-independent invariants: non-empty windows, finite deltas,
    /// valid prices/fractions/multipliers.
    ///
    /// # Errors
    /// Returns the first violated invariant in timeline order.
    pub fn validate_events(&self) -> Result<(), ScenarioError> {
        if !self.base_grid_price_per_mwh.is_finite() || self.base_grid_price_per_mwh < 0.0 {
            return Err(ScenarioError::InvalidPrice {
                event: None,
                price: self.base_grid_price_per_mwh,
            });
        }
        for (index, event) in self.events.iter().enumerate() {
            let (start, end) = event.window();
            if start >= end {
                return Err(ScenarioError::EmptyWindow { event: index });
            }
            match *event {
                ScenarioEvent::Weather { delta_c, .. } => {
                    if !delta_c.is_finite() {
                        return Err(ScenarioError::NonFiniteWeatherDelta { event: index });
                    }
                }
                ScenarioEvent::GridPrice { price_per_mwh, .. } => {
                    if !price_per_mwh.is_finite() || price_per_mwh < 0.0 {
                        return Err(ScenarioError::InvalidPrice {
                            event: Some(index),
                            price: price_per_mwh,
                        });
                    }
                }
                ScenarioEvent::Failure { kind, .. } => match kind {
                    FailureKind::AhuFailure { failed_units, .. } => {
                        if failed_units == 0 {
                            return Err(ScenarioError::NoFailedUnits { event: index });
                        }
                    }
                    FailureKind::CoolingDeviceFailure { capacity_fraction }
                    | FailureKind::UpsFailure { capacity_fraction, .. } => {
                        if !capacity_fraction.is_finite()
                            || capacity_fraction <= 0.0
                            || capacity_fraction > 1.0
                        {
                            return Err(ScenarioError::InvalidCapacityFraction {
                                event: index,
                                fraction: capacity_fraction,
                            });
                        }
                    }
                },
                ScenarioEvent::PowerCap { fraction, .. } => {
                    if !fraction.is_finite() || fraction <= 0.0 || fraction > 1.0 {
                        return Err(ScenarioError::InvalidPowerCapFraction {
                            event: index,
                            fraction,
                        });
                    }
                }
                ScenarioEvent::Surge { multiplier, .. } => {
                    if !multiplier.is_finite() || multiplier <= 0.0 {
                        return Err(ScenarioError::InvalidMultiplier {
                            event: index,
                            multiplier,
                        });
                    }
                }
                ScenarioEvent::ReplicaFailure { replicas, .. } => {
                    if replicas == 0 {
                        return Err(ScenarioError::NoFailedReplicas { event: index });
                    }
                }
            }
        }
        Ok(())
    }

    /// Full validation against a fleet of `site_count` sites: the event invariants plus
    /// site-selector range checks.
    ///
    /// # Errors
    /// Returns the first violated invariant in timeline order.
    pub fn validate(&self, site_count: usize) -> Result<(), ScenarioError> {
        self.validate_events()?;
        for (index, event) in self.events.iter().enumerate() {
            if let SiteSelector::Site(site) = event.site() {
                if site >= site_count {
                    return Err(ScenarioError::SiteOutOfRange {
                        event: index,
                        site,
                        sites: site_count,
                    });
                }
            }
        }
        Ok(())
    }

    /// The single-site view of the scenario seen by one fleet cell: events targeting
    /// other sites are dropped and matching selectors are normalized to
    /// [`SiteSelector::All`] (a cell is site 0 of its own 1-site world).
    #[must_use]
    pub fn for_site(&self, site: usize) -> Self {
        Self {
            base_grid_price_per_mwh: self.base_grid_price_per_mwh,
            events: self
                .events
                .iter()
                .filter(|event| event.site().matches(site))
                .map(|event| event.with_site(SiteSelector::All))
                .collect(),
        }
    }

    /// Resolves the scenario into dense per-step vectors for one site. Pure (no RNG) and
    /// run once per simulator build; the per-step hot path only indexes the result.
    ///
    /// `legacy_failures` is the config-level [`FailureSchedule`] the scenario subsumes:
    /// its windows come first, then the scenario's failure events in timeline order (the
    /// collapse semantics of [`dc_sim::failures::FailureState`] make the order
    /// irrelevant to the outcome).
    #[must_use]
    pub fn resolve(
        &self,
        site: usize,
        duration: SimTime,
        step: SimDuration,
        endpoint_count: usize,
        legacy_failures: &FailureSchedule,
    ) -> ResolvedTimeline {
        let step_minutes = step.as_minutes().max(1);
        let steps = step_count(duration, step_minutes);
        let endpoint_count = endpoint_count.max(1);
        let mut timeline = ResolvedTimeline {
            step_minutes,
            temp_offset_c: vec![0.0; steps],
            grid_price_per_mwh: vec![self.base_grid_price_per_mwh; steps],
            demand_scale: vec![1.0; steps],
            power_cap: vec![1.0; steps],
            endpoint_scale: Vec::new(),
            endpoint_count,
            failures: legacy_failures.clone(),
            replica_failures: Vec::new(),
        };
        for event in self.events.iter().filter(|e| e.site().matches(site)) {
            let (start, end) = event.window();
            let range = step_range(start, end, step_minutes, steps);
            match *event {
                ScenarioEvent::Weather { delta_c, .. } => {
                    for slot in &mut timeline.temp_offset_c[range] {
                        *slot += delta_c;
                    }
                }
                ScenarioEvent::GridPrice { price_per_mwh, .. } => {
                    for slot in &mut timeline.grid_price_per_mwh[range] {
                        *slot = price_per_mwh;
                    }
                }
                ScenarioEvent::Failure { kind, .. } => {
                    timeline.failures.add(FailureWindow { kind, start, end });
                }
                ScenarioEvent::PowerCap { fraction, .. } => {
                    for slot in &mut timeline.power_cap[range] {
                        *slot = slot.min(fraction);
                    }
                }
                ScenarioEvent::ReplicaFailure { endpoint, replicas, .. } => {
                    timeline.replica_failures.push(ReplicaFailureWindow {
                        start,
                        end,
                        endpoint,
                        replicas,
                    });
                }
                ScenarioEvent::Surge { endpoint, multiplier, .. } => match endpoint {
                    None => {
                        for slot in &mut timeline.demand_scale[range] {
                            *slot *= multiplier;
                        }
                    }
                    Some(id) => {
                        let column = id.0 as usize;
                        if column >= endpoint_count {
                            continue;
                        }
                        if timeline.endpoint_scale.is_empty() {
                            timeline.endpoint_scale = vec![1.0; steps * endpoint_count];
                        }
                        for step_index in range {
                            timeline.endpoint_scale[step_index * endpoint_count + column] *=
                                multiplier;
                        }
                    }
                },
            }
        }
        timeline
    }

}

/// Number of step samples a `[0, duration]` run records (the step loop includes both the
/// zero step and the final, possibly clipped, step).
fn step_count(duration: SimTime, step_minutes: u64) -> usize {
    (duration.as_minutes().div_ceil(step_minutes) + 1) as usize
}

/// The step ordinals whose sample times fall inside `[start, end)`, clamped to the run.
fn step_range(start: SimTime, end: SimTime, step_minutes: u64, steps: usize) -> Range<usize> {
    let first = (start.as_minutes().div_ceil(step_minutes) as usize).min(steps);
    let last = (end.as_minutes().div_ceil(step_minutes) as usize).min(steps);
    first..last.max(first)
}

/// Fluent builder for [`Scenario`]s. Site-targeted methods take anything convertible to a
/// [`SiteSelector`] (`usize` ordinals or [`SiteSelector::All`]).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the base grid price every site pays outside price-event windows.
    #[must_use]
    pub fn base_grid_price(mut self, price_per_mwh: f64) -> Self {
        self.scenario.base_grid_price_per_mwh = price_per_mwh;
        self
    }

    /// Appends a raw event (escape hatch for shapes without a sugar method).
    #[must_use]
    pub fn event(mut self, event: ScenarioEvent) -> Self {
        self.scenario.events.push(event);
        self
    }

    /// Fleet-wide heatwave over whole days: `+delta_c` °C during `[days.start, days.end)`.
    #[must_use]
    pub fn heatwave(self, days: Range<u64>, delta_c: f64) -> Self {
        self.weather(
            SiteSelector::All,
            SimTime::from_days(days.start),
            SimTime::from_days(days.end),
            delta_c,
        )
    }

    /// Fleet-wide cold snap over whole days: `-drop_c` °C during `[days.start, days.end)`.
    #[must_use]
    pub fn cold_snap(self, days: Range<u64>, drop_c: f64) -> Self {
        self.weather(
            SiteSelector::All,
            SimTime::from_days(days.start),
            SimTime::from_days(days.end),
            -drop_c,
        )
    }

    /// Additive outside-temperature overlay on selected site(s) over an explicit window.
    #[must_use]
    pub fn weather(
        mut self,
        site: impl Into<SiteSelector>,
        start: SimTime,
        end: SimTime,
        delta_c: f64,
    ) -> Self {
        self.scenario.events.push(ScenarioEvent::Weather {
            site: site.into(),
            start,
            end,
            delta_c,
        });
        self
    }

    /// Grid-price override on selected site(s) during `[start, end)`.
    #[must_use]
    pub fn grid_price(
        mut self,
        site: impl Into<SiteSelector>,
        start: SimTime,
        end: SimTime,
        price_per_mwh: f64,
    ) -> Self {
        self.scenario.events.push(ScenarioEvent::GridPrice {
            site: site.into(),
            start,
            end,
            price_per_mwh,
        });
        self
    }

    /// Alias of [`Self::grid_price`] that reads better for short expensive windows.
    #[must_use]
    pub fn grid_price_spike(
        self,
        site: impl Into<SiteSelector>,
        start: SimTime,
        end: SimTime,
        price_per_mwh: f64,
    ) -> Self {
        self.grid_price(site, start, end, price_per_mwh)
    }

    /// UPS failure on selected site(s): `capacity_fraction` of power capacity remains
    /// (the paper's power emergency uses 0.75).
    #[must_use]
    pub fn fail_ups(
        mut self,
        site: impl Into<SiteSelector>,
        start: SimTime,
        end: SimTime,
        capacity_fraction: f64,
    ) -> Self {
        self.scenario.events.push(ScenarioEvent::Failure {
            site: site.into(),
            start,
            end,
            kind: FailureKind::UpsFailure { ups: UpsId::new(0), capacity_fraction },
        });
        self
    }

    /// Datacenter-wide cooling-device failure on selected site(s): `capacity_fraction`
    /// of cooling capacity remains (the paper's thermal emergency uses 0.9).
    #[must_use]
    pub fn fail_cooling(
        mut self,
        site: impl Into<SiteSelector>,
        start: SimTime,
        end: SimTime,
        capacity_fraction: f64,
    ) -> Self {
        self.scenario.events.push(ScenarioEvent::Failure {
            site: site.into(),
            start,
            end,
            kind: FailureKind::CoolingDeviceFailure { capacity_fraction },
        });
        self
    }

    /// AHU failure in one aisle of selected site(s).
    #[must_use]
    pub fn fail_ahus(
        mut self,
        site: impl Into<SiteSelector>,
        aisle: usize,
        failed_units: usize,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        self.scenario.events.push(ScenarioEvent::Failure {
            site: site.into(),
            start,
            end,
            kind: FailureKind::AhuFailure { aisle: AisleId::new(aisle), failed_units },
        });
        self
    }

    /// Serving-replica outage on selected site(s): `replicas` instances of `endpoint`
    /// (every endpoint when `None`) are unavailable to the request fabric during
    /// `[start, end)`. In-flight work on the lost replicas is preempted and requeued.
    #[must_use]
    pub fn fail_replicas(
        mut self,
        site: impl Into<SiteSelector>,
        start: SimTime,
        end: SimTime,
        endpoint: Option<EndpointId>,
        replicas: u32,
    ) -> Self {
        self.scenario.events.push(ScenarioEvent::ReplicaFailure {
            site: site.into(),
            start,
            end,
            endpoint,
            replicas,
        });
        self
    }

    /// Operator power-cap directive on selected site(s): row and UPS budgets are
    /// clamped to `fraction` of provisioned capacity during `[start, end)`.
    #[must_use]
    pub fn power_cap(
        mut self,
        site: impl Into<SiteSelector>,
        start: SimTime,
        end: SimTime,
        fraction: f64,
    ) -> Self {
        self.scenario.events.push(ScenarioEvent::PowerCap {
            site: site.into(),
            start,
            end,
            fraction,
        });
        self
    }

    /// Fleet-wide traffic surge: every endpoint's request rate is multiplied during the
    /// window.
    #[must_use]
    pub fn surge(self, start: SimTime, end: SimTime, multiplier: f64) -> Self {
        self.surge_at(SiteSelector::All, start, end, multiplier)
    }

    /// Traffic surge on selected site(s).
    #[must_use]
    pub fn surge_at(
        mut self,
        site: impl Into<SiteSelector>,
        start: SimTime,
        end: SimTime,
        multiplier: f64,
    ) -> Self {
        self.scenario.events.push(ScenarioEvent::Surge {
            site: site.into(),
            start,
            end,
            endpoint: None,
            multiplier,
        });
        self
    }

    /// Scale ramp for one endpoint's request rate, on every site.
    #[must_use]
    pub fn endpoint_ramp(
        mut self,
        endpoint: EndpointId,
        start: SimTime,
        end: SimTime,
        multiplier: f64,
    ) -> Self {
        self.scenario.events.push(ScenarioEvent::Surge {
            site: SiteSelector::All,
            start,
            end,
            endpoint: Some(endpoint),
            multiplier,
        });
        self
    }

    /// Validates and returns the scenario.
    ///
    /// # Errors
    /// Returns the first violated event invariant (site-selector ranges are checked
    /// later, against an actual fleet, by [`Scenario::validate`] /
    /// [`crate::experiment::FleetConfig::check`]).
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        self.scenario.validate_events()?;
        Ok(self.scenario)
    }
}

/// A scenario resolved for one site into dense per-step vectors (step ordinal = index),
/// plus the merged failure schedule. Built once per run; per-step queries are index math
/// with no allocation, per the dense-telemetry contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedTimeline {
    step_minutes: u64,
    temp_offset_c: Vec<f64>,
    grid_price_per_mwh: Vec<f64>,
    demand_scale: Vec<f64>,
    /// Per-step power-cap fraction (1.0 outside cap windows; overlapping caps
    /// min-composed at resolution).
    power_cap: Vec<f64>,
    /// Step-major per-endpoint multipliers; empty unless an endpoint-targeted surge
    /// exists (the common all-endpoint case stays one flat vector).
    endpoint_scale: Vec<f64>,
    endpoint_count: usize,
    failures: FailureSchedule,
    /// Serving-replica outage windows, scanned on demand (scenarios hold a handful of
    /// events, so a linear scan beats a dense per-step × per-endpoint matrix).
    replica_failures: Vec<ReplicaFailureWindow>,
}

/// One resolved [`ScenarioEvent::ReplicaFailure`] window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ReplicaFailureWindow {
    start: SimTime,
    end: SimTime,
    endpoint: Option<EndpointId>,
    replicas: u32,
}

impl ResolvedTimeline {
    /// Number of resolved step samples.
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.temp_offset_c.len()
    }

    fn index(&self, now: SimTime) -> usize {
        ((now.as_minutes() / self.step_minutes) as usize).min(self.step_count() - 1)
    }

    /// Additive outside-temperature overlay at `now` (°C; 0 outside weather episodes).
    #[must_use]
    pub fn temp_offset_at(&self, now: SimTime) -> f64 {
        self.temp_offset_c[self.index(now)]
    }

    /// Grid price at `now` ($/MWh).
    #[must_use]
    pub fn grid_price_at(&self, now: SimTime) -> f64 {
        self.grid_price_per_mwh[self.index(now)]
    }

    /// The full per-step grid-price curve ($/MWh, step ordinal = index). The fleet layer
    /// reads each cell's curve from here instead of re-resolving it.
    #[must_use]
    pub fn grid_prices(&self) -> &[f64] {
        &self.grid_price_per_mwh
    }

    /// Demand multiplier for one endpoint at `now` (site-wide surges times the
    /// endpoint's own ramps; 1 outside surge windows).
    #[must_use]
    pub fn demand_scale_at(&self, now: SimTime, endpoint: EndpointId) -> f64 {
        let index = self.index(now);
        let site_wide = self.demand_scale[index];
        if self.endpoint_scale.is_empty() {
            return site_wide;
        }
        let column = endpoint.0 as usize;
        if column >= self.endpoint_count {
            return site_wide;
        }
        site_wide * self.endpoint_scale[index * self.endpoint_count + column]
    }

    /// Power-cap fraction at `now` (1.0 outside cap windows; the most restrictive
    /// overlapping cap inside them).
    #[must_use]
    pub fn power_cap_at(&self, now: SimTime) -> f64 {
        self.power_cap[self.index(now)]
    }

    /// The full per-step power-cap curve (step ordinal = index).
    #[must_use]
    pub fn power_caps(&self) -> &[f64] {
        &self.power_cap
    }

    /// Simulated minutes spent under an active power cap (steps with fraction `< 1.0`).
    #[must_use]
    pub fn capped_minutes(&self) -> u64 {
        self.power_cap.iter().filter(|&&f| f < 1.0).count() as u64 * self.step_minutes
    }

    /// The merged failure schedule (legacy config windows plus scenario failure events).
    #[must_use]
    pub fn failures(&self) -> &FailureSchedule {
        &self.failures
    }

    /// Serving replicas of `endpoint` lost to [`ScenarioEvent::ReplicaFailure`] windows
    /// active at `now` (overlapping windows sum). Zero outside every window.
    #[must_use]
    pub fn failed_replicas_at(&self, now: SimTime, endpoint: EndpointId) -> u32 {
        self.replica_failures
            .iter()
            .filter(|w| {
                now >= w.start && now < w.end && w.endpoint.is_none_or(|id| id == endpoint)
            })
            .map(|w| w.replicas)
            .sum()
    }

    /// `true` when the scenario contains any serving-replica outage window.
    #[must_use]
    pub fn has_replica_failures(&self) -> bool {
        !self.replica_failures.is_empty()
    }
}

/// Energy cost of one site's run in dollars: the per-step datacenter power draw priced
/// by the site's resolved grid-price curve. `RunReport` stays byte-compatible — cost is
/// derived on demand from the power series the report already records.
#[must_use]
pub fn energy_cost_usd(report: &RunReport, timeline: &ResolvedTimeline) -> f64 {
    let step_hours = report.step.as_hours();
    report
        .datacenter_power
        .iter()
        .map(|(now, kw)| kw * step_hours * timeline.grid_price_at(now) / 1000.0)
        .sum()
}

/// Fleet-wide energy cost in dollars: every site's power series priced by that site's
/// resolved grid-price curve from the fleet configuration's scenario.
#[must_use]
pub fn fleet_energy_cost_usd(
    report: &crate::metrics::FleetReport,
    config: &crate::experiment::FleetConfig,
) -> f64 {
    report
        .sites
        .iter()
        .enumerate()
        .map(|(site, run)| energy_cost_usd(run, &config.site_timeline(site)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(minutes: u64) -> SimTime {
        SimTime::from_minutes(minutes)
    }

    fn resolve(scenario: &Scenario, site: usize) -> ResolvedTimeline {
        scenario.resolve(
            site,
            SimTime::from_hours(2),
            SimDuration::from_minutes(5),
            4,
            &FailureSchedule::none(),
        )
    }

    #[test]
    fn empty_scenario_resolves_to_a_neutral_timeline() {
        let timeline = resolve(&Scenario::default(), 0);
        assert_eq!(timeline.step_count(), 25);
        for minutes in [0u64, 5, 60, 120, 500] {
            assert_eq!(timeline.temp_offset_at(t(minutes)), 0.0);
            assert_eq!(timeline.grid_price_at(t(minutes)), DEFAULT_GRID_PRICE_PER_MWH);
            assert_eq!(timeline.demand_scale_at(t(minutes), EndpointId(0)), 1.0);
        }
        assert!(timeline.failures().windows().is_empty());
        assert!(Scenario::default().is_empty());
    }

    #[test]
    fn weather_overlays_sum_over_their_windows() {
        let scenario = Scenario::builder()
            .weather(SiteSelector::All, t(10), t(60), 8.0)
            .weather(0, t(30), t(60), 2.0)
            .build()
            .expect("valid");
        let timeline = resolve(&scenario, 0);
        assert_eq!(timeline.temp_offset_at(t(0)), 0.0);
        assert_eq!(timeline.temp_offset_at(t(10)), 8.0);
        assert_eq!(timeline.temp_offset_at(t(30)), 10.0);
        assert_eq!(timeline.temp_offset_at(t(55)), 10.0);
        assert_eq!(timeline.temp_offset_at(t(60)), 0.0);
        // Half-open window: a step landing exactly on `end` is outside.
        let other_site = resolve(&scenario, 1);
        assert_eq!(other_site.temp_offset_at(t(30)), 8.0, "site 1 skips the Site(0) event");
    }

    #[test]
    fn later_price_events_overwrite_earlier_ones() {
        let scenario = Scenario::builder()
            .base_grid_price(50.0)
            .grid_price(SiteSelector::All, t(0), t(60), 100.0)
            .grid_price_spike(SiteSelector::All, t(30), t(45), 400.0)
            .build()
            .expect("valid");
        let timeline = resolve(&scenario, 0);
        assert_eq!(timeline.grid_price_at(t(0)), 100.0);
        assert_eq!(timeline.grid_price_at(t(30)), 400.0);
        assert_eq!(timeline.grid_price_at(t(45)), 100.0);
        assert_eq!(timeline.grid_price_at(t(60)), 50.0);
        assert_eq!(timeline.grid_prices().len(), timeline.step_count());
        assert_eq!(timeline.grid_prices()[0], 100.0);
    }

    #[test]
    fn surges_multiply_and_endpoint_ramps_stay_per_endpoint() {
        let scenario = Scenario::builder()
            .surge(t(0), t(30), 2.0)
            .endpoint_ramp(EndpointId(1), t(15), t(30), 3.0)
            .build()
            .expect("valid");
        let timeline = resolve(&scenario, 0);
        assert_eq!(timeline.demand_scale_at(t(0), EndpointId(0)), 2.0);
        assert_eq!(timeline.demand_scale_at(t(15), EndpointId(0)), 2.0);
        assert_eq!(timeline.demand_scale_at(t(15), EndpointId(1)), 6.0);
        assert_eq!(timeline.demand_scale_at(t(30), EndpointId(1)), 1.0);
        // Endpoints beyond the catalog fall back to the site-wide multiplier.
        assert_eq!(timeline.demand_scale_at(t(15), EndpointId(99)), 2.0);
    }

    #[test]
    fn failure_events_merge_with_the_legacy_schedule() {
        let legacy =
            FailureSchedule::none().with_power_emergency(t(0), t(20));
        let scenario = Scenario::builder()
            .fail_cooling(SiteSelector::All, t(10), t(40), 0.9)
            .fail_ahus(0, 1, 2, t(10), t(40))
            .build()
            .expect("valid");
        let timeline = scenario.resolve(
            0,
            SimTime::from_hours(1),
            SimDuration::from_minutes(5),
            1,
            &legacy,
        );
        assert_eq!(timeline.failures().windows().len(), 3);
        let state = timeline.failures().state_at(t(15));
        assert!((state.global_cooling_fraction - 0.9).abs() < 1e-12);
        assert_eq!(state.failed_upses().len(), 1);
        assert_eq!(state.failed_ahus().len(), 1);
        // Scenario-only failures end on schedule; the legacy window has already closed.
        assert!(timeline.failures().state_at(t(25)).failed_upses().is_empty());
    }

    #[test]
    fn power_caps_min_compose_over_their_windows() {
        let scenario = Scenario::builder()
            .power_cap(SiteSelector::All, t(10), t(60), 0.8)
            .power_cap(0, t(30), t(45), 0.6)
            .power_cap(0, t(40), t(50), 0.9)
            .build()
            .expect("valid");
        let timeline = resolve(&scenario, 0);
        assert_eq!(timeline.power_cap_at(t(0)), 1.0);
        assert_eq!(timeline.power_cap_at(t(10)), 0.8);
        assert_eq!(timeline.power_cap_at(t(30)), 0.6, "most restrictive cap wins");
        assert_eq!(timeline.power_cap_at(t(40)), 0.6);
        assert_eq!(timeline.power_cap_at(t(45)), 0.8, "0.9 is weaker than the 0.8 backdrop");
        assert_eq!(timeline.power_cap_at(t(60)), 1.0, "half-open window");
        assert_eq!(timeline.power_caps().len(), timeline.step_count());
        // Site 1 only sees the fleet-wide cap.
        let other = resolve(&scenario, 1);
        assert_eq!(other.power_cap_at(t(30)), 0.8);
        // Capped minutes count steps with an active cap (10..60 at 5-minute steps).
        assert_eq!(timeline.capped_minutes(), 50);
        assert_eq!(resolve(&Scenario::default(), 0).capped_minutes(), 0);
    }

    #[test]
    fn replica_failures_resolve_to_scannable_windows() {
        let scenario = Scenario::builder()
            .fail_replicas(SiteSelector::All, t(10), t(40), None, 2)
            .fail_replicas(0, t(20), t(40), Some(EndpointId(1)), 1)
            .fail_replicas(1, t(0), t(60), None, 4)
            .build()
            .expect("valid");
        let timeline = resolve(&scenario, 0);
        assert!(timeline.has_replica_failures());
        assert_eq!(timeline.failed_replicas_at(t(0), EndpointId(0)), 0);
        assert_eq!(timeline.failed_replicas_at(t(10), EndpointId(0)), 2);
        assert_eq!(timeline.failed_replicas_at(t(25), EndpointId(0)), 2);
        assert_eq!(
            timeline.failed_replicas_at(t(25), EndpointId(1)),
            3,
            "overlapping windows sum and endpoint targeting filters"
        );
        assert_eq!(timeline.failed_replicas_at(t(40), EndpointId(1)), 0, "half-open window");
        // Site 1 sees its own window but not site 0's endpoint-targeted one.
        let other = resolve(&scenario, 1);
        assert_eq!(other.failed_replicas_at(t(25), EndpointId(1)), 6);
        // Replica failures are not power/cooling emergencies: no failure windows, no
        // contribution to the recovery-time anchor.
        assert!(timeline.failures().windows().is_empty());
        assert_eq!(scenario.last_emergency_end(), None);
        // A fabric-free timeline scans to zero everywhere.
        assert!(!resolve(&Scenario::default(), 0).has_replica_failures());

        let zero = Scenario::builder()
            .fail_replicas(SiteSelector::All, t(0), t(30), None, 0)
            .build();
        assert_eq!(zero.unwrap_err(), ScenarioError::NoFailedReplicas { event: 0 });
        let message = ScenarioError::NoFailedReplicas { event: 3 }.to_string();
        assert!(message.contains("zero replicas"), "{message}");
    }

    #[test]
    fn power_cap_fractions_are_validated() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let result =
                Scenario::builder().power_cap(SiteSelector::All, t(0), t(30), bad).build();
            match result.unwrap_err() {
                ScenarioError::InvalidPowerCapFraction { event: 0, fraction } => {
                    assert!(fraction.is_nan() || fraction == bad);
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
        // A 1.0 cap is a valid no-op; window and site checks apply like any event.
        assert!(Scenario::builder()
            .power_cap(SiteSelector::All, t(0), t(30), 1.0)
            .build()
            .is_ok());
        let empty = Scenario::builder().power_cap(0, t(30), t(30), 0.8).build();
        assert_eq!(empty.unwrap_err(), ScenarioError::EmptyWindow { event: 0 });
        let scenario = Scenario::builder()
            .power_cap(3, t(0), t(30), 0.8)
            .build()
            .expect("event invariants hold");
        assert_eq!(
            scenario.validate(2).unwrap_err(),
            ScenarioError::SiteOutOfRange { event: 0, site: 3, sites: 2 }
        );
        let message = ScenarioError::InvalidPowerCapFraction { event: 2, fraction: 1.5 }
            .to_string();
        assert!(message.contains("power-cap fraction"), "{message}");
    }

    #[test]
    fn for_site_filters_and_normalizes_selectors() {
        let scenario = Scenario::builder()
            .heatwave(0..2, 6.0)
            .grid_price(2, t(0), t(60), 300.0)
            .fail_ups(1, t(0), t(30), 0.75)
            .build()
            .expect("valid");
        let site2 = scenario.for_site(2);
        assert_eq!(site2.events.len(), 2);
        assert!(site2.events.iter().all(|e| e.site() == SiteSelector::All));
        let site0 = scenario.for_site(0);
        assert_eq!(site0.events.len(), 1);
        // A filtered view resolves identically whichever site ordinal reads it.
        assert_eq!(resolve(&site2, 0), resolve(&site2, 7));
    }

    #[test]
    fn validation_rejects_bad_events_with_typed_errors() {
        let empty_window = Scenario::builder().surge(t(30), t(30), 2.0).build();
        assert_eq!(empty_window.unwrap_err(), ScenarioError::EmptyWindow { event: 0 });

        let bad_multiplier = Scenario::builder().surge(t(0), t(30), 0.0).build();
        assert_eq!(
            bad_multiplier.unwrap_err(),
            ScenarioError::InvalidMultiplier { event: 0, multiplier: 0.0 }
        );

        let bad_fraction =
            Scenario::builder().fail_ups(SiteSelector::All, t(0), t(30), 1.5).build();
        assert_eq!(
            bad_fraction.unwrap_err(),
            ScenarioError::InvalidCapacityFraction { event: 0, fraction: 1.5 }
        );

        let bad_price = Scenario::builder().base_grid_price(-1.0).build();
        assert_eq!(
            bad_price.unwrap_err(),
            ScenarioError::InvalidPrice { event: None, price: -1.0 }
        );

        let bad_delta =
            Scenario::builder().weather(SiteSelector::All, t(0), t(30), f64::NAN).build();
        assert_eq!(bad_delta.unwrap_err(), ScenarioError::NonFiniteWeatherDelta { event: 0 });

        let no_units = Scenario::builder().fail_ahus(0, 0, 0, t(0), t(30)).build();
        assert_eq!(no_units.unwrap_err(), ScenarioError::NoFailedUnits { event: 0 });
    }

    #[test]
    fn validation_checks_site_ranges_against_the_fleet() {
        let scenario = Scenario::builder()
            .grid_price(2, t(0), t(60), 300.0)
            .build()
            .expect("event invariants hold");
        assert!(scenario.validate(3).is_ok());
        assert_eq!(
            scenario.validate(2).unwrap_err(),
            ScenarioError::SiteOutOfRange { event: 0, site: 2, sites: 2 }
        );
        // Errors render as readable text.
        let message = scenario.validate(2).unwrap_err().to_string();
        assert!(message.contains("out of range"), "{message}");
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let scenario = Scenario::builder()
            .heatwave(3..5, 8.0)
            .cold_snap(5..6, 4.0)
            .grid_price_spike(1, t(100), t(200), 280.0)
            .fail_ups(0, t(50), t(90), 0.75)
            .fail_ahus(2, 1, 1, t(60), t(80))
            .power_cap(1, t(70), t(120), 0.7)
            .surge(t(0), t(30), 1.8)
            .endpoint_ramp(EndpointId(2), t(10), t(40), 2.5)
            .fail_replicas(1, t(20), t(50), Some(EndpointId(0)), 2)
            .fail_replicas(SiteSelector::All, t(30), t(60), None, 1)
            .build()
            .expect("valid");
        let json = serde_json::to_string(&scenario).expect("serialize");
        let back: Scenario = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, scenario);
        assert_eq!(serde_json::to_string(&back).expect("serialize"), json);
    }

    #[test]
    fn emergency_presets_match_the_paper() {
        let power = Scenario::power_emergency(t(0), t(5));
        assert_eq!(power.events.len(), 1);
        let state = resolve(&power, 0).failures().state_at(t(0));
        assert_eq!(state.failed_upses(), &[(UpsId::new(0), 0.75)]);
        let thermal = Scenario::thermal_emergency(t(0), t(5));
        let state = resolve(&thermal, 0).failures().state_at(t(0));
        assert!((state.global_cooling_fraction - 0.9).abs() < 1e-12);
    }

    #[test]
    fn energy_cost_prices_the_power_series() {
        let mut report = RunReport::new(
            "Baseline",
            SimTime::from_minutes(30),
            SimDuration::from_minutes(15),
        );
        // Two steps at 1000 kW, one at 2000 kW.
        report.datacenter_power.push(t(0), 1000.0);
        report.datacenter_power.push(t(15), 1000.0);
        report.datacenter_power.push(t(30), 2000.0);
        let scenario = Scenario::builder()
            .base_grid_price(100.0)
            .grid_price(SiteSelector::All, t(30), t(45), 200.0)
            .build()
            .expect("valid");
        let timeline = scenario.resolve(
            0,
            SimTime::from_minutes(30),
            SimDuration::from_minutes(15),
            1,
            &FailureSchedule::none(),
        );
        // 1 MWh-equivalent pricing: (1000 kW × 0.25 h × $100 + same + 2000 × 0.25 × $200) / 1000.
        let cost = energy_cost_usd(&report, &timeline);
        assert!((cost - (25.0 + 25.0 + 100.0)).abs() < 1e-9, "cost {cost}");
    }
}
