//! # cluster-sim — end-to-end cluster simulator for the TAPAS reproduction
//!
//! This crate wires the substrates together into the discrete-time simulator the paper uses
//! for its evaluation (§5.1): the datacenter physics engine (`dc-sim`), the LLM profiles and
//! engine (`llm-sim`), the workload generators (`workload`) and the TAPAS policies (`tapas`).
//!
//! * [`experiment`] — experiment configuration: cluster size, policy, IaaS/SaaS mix,
//!   oversubscription level, climate, duration and step, plus the multi-datacenter
//!   [`experiment::FleetConfig`] (per-site layout/climate/seed and the geo placement
//!   policy). Configurations compose a [`scenario::Scenario`] for everything episodic.
//! * [`scenario`] — the typed, time-indexed event timeline (weather episodes, grid-price
//!   curves, infrastructure failures, demand shaping) with per-site targeting, a fluent
//!   [`scenario::ScenarioBuilder`], typed [`scenario::ScenarioError`] validation, and
//!   dense per-step resolution ([`scenario::ResolvedTimeline`]).
//! * [`simulator`] — the step loop: VM arrivals/retirements and placement, endpoint request
//!   routing, instance configuration, IaaS load replay, physics evaluation, throttling/capping
//!   bookkeeping and weekly profile refinement.
//! * [`fleet`] — the fleet step loop: N datacenter cells under distinct climates, with
//!   geo-aware arrival splitting and an across-datacenter parallel dimension.
//! * [`fabric`] — the opt-in request fabric: an event-timestamped (millisecond) fleet-wide
//!   inference-request stream, geo-routed per request and admitted into per-endpoint
//!   continuous-batching schedulers under KV-cache occupancy constraints, yielding
//!   per-request TTFT/TBT histograms and SLO attainment curves.
//! * [`metrics`] — per-run report: time series of maximum GPU temperature and peak row power,
//!   event counts, capped-time fractions, SLO attainment and average result quality;
//!   fleet-wide aggregation in [`metrics::FleetReport`].
//! * [`placement_study`] — the random-placement study of Fig. 11.
//! * [`oversubscription`] — the oversubscription sweep of Fig. 21.
//! * [`emergency`] — the failure-management comparison of Table 2.
//!
//! # Example
//!
//! ```
//! use cluster_sim::experiment::ExperimentConfig;
//! use cluster_sim::simulator::ClusterSimulator;
//! use tapas::policy::Policy;
//!
//! let mut config = ExperimentConfig::small_smoke_test();
//! config.policy = Policy::Tapas;
//! let report = ClusterSimulator::new(config).run();
//! assert!(report.max_gpu_temp.peak().unwrap() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod emergency;
pub mod experiment;
pub mod fabric;
pub mod fleet;
pub mod metrics;
pub mod oversubscription;
pub mod placement_study;
pub mod scenario;
pub mod simulator;

pub use experiment::{ExperimentConfig, FleetConfig, GeoPolicy, RequestFabricConfig, SiteConfig};
pub use fabric::{FabricGenerator, FabricRequest, RequestFabric};
pub use fleet::FleetSimulator;
pub use metrics::{FleetReport, LatencyHistogram, RequestMetrics, RunReport};
pub use scenario::{
    ResolvedTimeline, Scenario, ScenarioBuilder, ScenarioError, ScenarioEvent, SiteSelector,
};
pub use simulator::ClusterSimulator;
