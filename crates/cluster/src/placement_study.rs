//! The random-placement study of Fig. 11.
//!
//! §3.1 deploys 80 VMs across two rows and evaluates 100 000 random placements: the worst
//! placement exceeds the 85 °C GPU limit and draws 27 % more peak row power than the best,
//! and maximum temperature and peak power are uncorrelated across placements — the
//! motivation for considering both dimensions when placing VMs.

use dc_sim::engine::{ActivityPlanes, Datacenter, StepInput};
use dc_sim::failures::FailureState;
use dc_sim::topology::LayoutConfig;
use serde::{Deserialize, Serialize};
use simkit::rng::SimRng;
use simkit::units::Celsius;

/// Result of evaluating one random placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementSample {
    /// Hottest GPU temperature across the cluster.
    pub max_temp_c: f64,
    /// Peak row power.
    pub peak_row_power_kw: f64,
}

/// The study configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementStudy {
    /// Number of VMs to place (the paper uses 80 across two rows).
    pub vm_count: usize,
    /// Number of random placements to evaluate.
    pub samples: usize,
    /// Outside temperature at which placements are evaluated.
    pub outside_temp_c: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for PlacementStudy {
    fn default() -> Self {
        Self { vm_count: 60, samples: 1000, outside_temp_c: 32.0, seed: 42 }
    }
}

impl PlacementStudy {
    /// Runs the study on the two-row, 80-server cluster of the paper.
    ///
    /// Each sample places `vm_count` busy VMs (with heterogeneous loads) on random servers
    /// and evaluates the resulting peak temperature and row power at a peak-load instant.
    #[must_use]
    pub fn run(&self) -> Vec<PlacementSample> {
        let layout = LayoutConfig::real_cluster_two_rows().build();
        let dc = Datacenter::new(layout, self.seed);
        let mut rng = SimRng::seed_from(self.seed).derive("placement-study");
        let server_count = dc.layout().server_count();
        let vm_count = self.vm_count.min(server_count);

        // Heterogeneous per-VM loads: some VMs run hot, some are light.
        let vm_loads: Vec<f64> = (0..vm_count)
            .map(|_| rng.uniform(0.45, 1.0))
            .collect();

        (0..self.samples)
            .map(|_| {
                let mut servers: Vec<usize> = (0..server_count).collect();
                rng.shuffle(&mut servers);
                let mut activity = ActivityPlanes::idle_for(dc.layout());
                for (vm, &server) in vm_loads.iter().zip(servers.iter()) {
                    activity.set_uniform(server, *vm);
                }
                let outcome = dc.evaluate(&StepInput {
                    outside_temp: Celsius::new(self.outside_temp_c),
                    activity,
                    failures: FailureState::healthy(),
                    power_cap: 1.0,
                });
                PlacementSample {
                    max_temp_c: outcome.max_gpu_temp().value(),
                    peak_row_power_kw: outcome.peak_row_power().value(),
                }
            })
            .collect()
    }

    /// Pearson correlation between maximum temperature and peak power across samples.
    #[must_use]
    pub fn temperature_power_correlation(samples: &[PlacementSample]) -> f64 {
        if samples.len() < 2 {
            return 0.0;
        }
        let temps: Vec<f64> = samples.iter().map(|s| s.max_temp_c).collect();
        let powers: Vec<f64> = samples.iter().map(|s| s.peak_row_power_kw).collect();
        let mt = simkit::stats::mean(&temps).expect("non-empty");
        let mp = simkit::stats::mean(&powers).expect("non-empty");
        let cov: f64 = temps
            .iter()
            .zip(&powers)
            .map(|(t, p)| (t - mt) * (p - mp))
            .sum();
        let vt: f64 = temps.iter().map(|t| (t - mt) * (t - mt)).sum();
        let vp: f64 = powers.iter().map(|p| (p - mp) * (p - mp)).sum();
        if vt <= 0.0 || vp <= 0.0 {
            0.0
        } else {
            cov / (vt.sqrt() * vp.sqrt())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::stats;

    fn samples() -> Vec<PlacementSample> {
        PlacementStudy { vm_count: 60, samples: 120, outside_temp_c: 32.0, seed: 7 }.run()
    }

    #[test]
    fn placement_spread_matches_fig11_shape() {
        let samples = samples();
        assert_eq!(samples.len(), 120);
        let temps: Vec<f64> = samples.iter().map(|s| s.max_temp_c).collect();
        let powers: Vec<f64> = samples.iter().map(|s| s.peak_row_power_kw).collect();
        // Placements differ in peak temperature and peak power.
        let temp_spread = stats::max(&temps).unwrap() - stats::min(&temps).unwrap();
        let power_spread = (stats::max(&powers).unwrap() - stats::min(&powers).unwrap())
            / stats::min(&powers).unwrap();
        assert!(temp_spread > 1.0, "temperature spread {temp_spread}");
        assert!(power_spread > 0.05, "relative power spread {power_spread}");
        // Typical placements sit in a plausible GPU temperature range.
        let p50 = stats::percentile(&temps, 50.0).unwrap();
        assert!((60.0..86.0).contains(&p50), "median peak temperature {p50}");
    }

    #[test]
    fn temperature_and_power_are_weakly_correlated() {
        let samples = samples();
        let corr = PlacementStudy::temperature_power_correlation(&samples);
        assert!(corr.abs() < 0.5, "Fig. 11b: placements show no strong correlation, got {corr}");
        assert_eq!(PlacementStudy::temperature_power_correlation(&[]), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = PlacementStudy { samples: 10, ..PlacementStudy::default() }.run();
        let b = PlacementStudy { samples: 10, ..PlacementStudy::default() }.run();
        assert_eq!(a, b);
    }
}
