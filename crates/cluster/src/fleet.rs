//! The multi-datacenter fleet simulation loop.
//!
//! A [`FleetSimulator`] owns N datacenter cells — each a full [`ClusterSimulator`] with
//! its own layout, climate, weather seed, power hierarchy and local TAPAS control loop —
//! plus the geo placement stage that splits each step's VM arrivals across sites. One
//! fleet step performs, in order:
//!
//! 0. **Price injection** — write each site's exogenous grid price for this step (dense
//!    per-site curves resolved once from the scenario) into its [`SiteSignals`] slot.
//! 1. **Arrival routing** — pop the arrivals due this step from the fleet-wide stream (in
//!    arrival order) and assign each to a site: pinned, weighted round-robin
//!    ([`workload::arrivals::WeightedSplitter`]) or TAPAS geo routing
//!    ([`tapas::geo::GeoPlacement`] over the per-site [`SiteSignals`] refreshed from the
//!    previous step's telemetry — power headroom, thermal slack, load, emergencies — plus
//!    the current step's grid price, weighed across the fleet's price spread).
//! 2. **Cell stepping** — advance every cell one step. Cells are independent within a
//!    step, so with the `parallel` feature they run on scoped threads (the outer
//!    across-datacenter parallel dimension) with bit-identical results.
//! 3. **Signal refresh** — summarize each cell's dense telemetry grids into its
//!    [`SiteSignals`] slot, in fixed site order.
//!
//! The steady-state fleet loop allocates no maps: the stream is a `VecDeque`, signals and
//! routing counters live in pre-sized site-ordinal vectors, and each cell's step loop is
//! allocation-free per the dense-telemetry contract.

use crate::experiment::{FleetConfig, GeoPolicy, RequestFabricConfig};
use crate::fabric::{FabricGenerator, FabricRequest, MS_PER_MINUTE};
use crate::metrics::{FleetReport, RunReport};
use crate::scenario::ResolvedTimeline;
use crate::simulator::ClusterSimulator;
use simkit::queue::EventQueue;
use simkit::time::{SimClock, SimTime};
use std::collections::VecDeque;
use tapas::geo::{GeoPlacement, SiteSignals};
use workload::arrivals::WeightedSplitter;
use workload::trace::{TraceError, TraceRecord};
use workload::vm::Vm;

/// The multi-datacenter fleet simulator.
#[derive(Debug)]
pub struct FleetSimulator {
    config: FleetConfig,
    cells: Vec<ClusterSimulator>,
    /// Fleet-wide arrival stream, sorted by arrival time.
    stream: VecDeque<Vm>,
    /// Per-site signals, refreshed after every step (site ordinal = index).
    signals: Vec<SiteSignals>,
    geo: GeoPlacement,
    splitter: WeightedSplitter,
    /// VM arrivals routed to each site so far.
    routed: Vec<u64>,
    emergency_diversions: u64,
    /// Fleet-wide request-fabric generator (None unless the base experiment opts in, or
    /// when a replayed trace preloaded the queue instead).
    fabric_generator: Option<FabricGenerator>,
    /// The fleet-wide fabric stream, ordered by millisecond timestamp (FIFO on ties).
    fabric_queue: EventQueue<FabricRequest>,
    /// The base scenario's resolved timeline, driving fleet-wide fabric demand shaping.
    /// (Per-site demand events still shape each cell's *legacy* serving path; the fabric
    /// stream is generated once fleet-wide from the base view.)
    base_timeline: ResolvedTimeline,
    /// Round-robin splitter for per-request routing — a separate instance from the VM
    /// splitter so request traffic never perturbs the VM round-robin phase.
    request_splitter: WeightedSplitter,
}

impl FleetSimulator {
    /// Builds a fleet simulator: one cell per site plus the fleet-wide arrival stream.
    ///
    /// # Panics
    /// Panics if the configuration fails [`FleetConfig::check`].
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        config.check().unwrap_or_else(|error| panic!("{error}"));
        let catalog = config.base.endpoint_catalog();
        let stream: VecDeque<Vm> =
            config.base.vm_stream(&catalog, config.arrival_scale).into();
        let cells: Vec<ClusterSimulator> = (0..config.sites.len())
            .map(|site| ClusterSimulator::fleet_cell(config.site_experiment(site)))
            .collect();
        // Each cell already resolved its site view of the scenario into a dense
        // timeline; grid prices are read from there rather than resolved a second time.
        let mut signals: Vec<SiteSignals> =
            cells.iter().map(ClusterSimulator::site_signals).collect();
        for (signal, cell) in signals.iter_mut().zip(&cells) {
            signal.grid_price_per_mwh = cell.timeline().grid_price_at(SimTime::ZERO);
        }
        // Shares are only meaningful (and only validated) under round-robin; other
        // policies get a uniform splitter that is never consulted.
        let shares: Vec<f64> = if config.geo == GeoPolicy::RoundRobin {
            config.sites.iter().map(|s| s.arrival_share).collect()
        } else {
            vec![1.0; cells.len()]
        };
        let routed = vec![0; cells.len()];
        // The fabric stream is generated once fleet-wide, from the base seed and base
        // catalog, and scaled with the fleet's arrival scale exactly like the VM stream
        // (for a single-site fleet both scales are 1.0 and the stream is bit-identical
        // to the one a standalone simulator generates for itself).
        let fabric_generator = config.base.request_fabric.map(|mut fabric_config| {
            fabric_config.rate_scale *= config.arrival_scale;
            FabricGenerator::new(config.base.seed, &catalog, fabric_config)
        });
        let base_timeline = config.base.resolved_timeline();
        let mut geo = GeoPlacement::default();
        geo.set_request_endpoints(catalog.len());
        Self {
            geo,
            splitter: WeightedSplitter::new(&shares),
            request_splitter: WeightedSplitter::new(&shares),
            stream,
            signals,
            routed,
            emergency_diversions: 0,
            fabric_generator,
            fabric_queue: EventQueue::new(),
            base_timeline,
            cells,
            config,
        }
    }

    /// Builds a fleet that replays an externally supplied request trace through the
    /// fabric instead of generating a stream (the fleet-level trace-replay entry; the
    /// VM arrival stream is still generated as usual). Requests are geo-routed across
    /// sites per record exactly like generated traffic.
    ///
    /// # Errors
    /// Returns [`TraceError::UnknownEndpoint`] if a record names an endpoint outside the
    /// base experiment's catalog.
    ///
    /// # Panics
    /// Panics if the configuration fails [`FleetConfig::check`].
    pub fn with_request_trace(
        mut config: FleetConfig,
        records: &[TraceRecord],
    ) -> Result<Self, TraceError> {
        if config.base.request_fabric.is_none() {
            config.base.request_fabric = Some(RequestFabricConfig::default());
        }
        let endpoints = config.base.endpoint_catalog().len() as u64;
        if let Some(bad) = records.iter().find(|r| r.endpoint >= endpoints) {
            return Err(TraceError::UnknownEndpoint { endpoint: bad.endpoint });
        }
        let mut fleet = Self::new(config);
        fleet.fabric_generator = None;
        for (line, record) in records.iter().enumerate() {
            fleet.fabric_queue.push(
                record.timestamp_ms,
                FabricRequest {
                    id: line as u64,
                    endpoint: record.endpoint as u32,
                    prompt_tokens: record.prompt_tokens,
                    output_tokens: record.output_tokens,
                },
            );
        }
        Ok(fleet)
    }

    /// The fleet configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of datacenter cells.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.cells.len()
    }

    /// The current per-site signals (exposed for tests and examples).
    #[must_use]
    pub fn signals(&self) -> &[SiteSignals] {
        &self.signals
    }

    /// Advances the whole fleet by one step at simulated time `now`.
    pub fn step(&mut self, now: SimTime) {
        // 0. Inject the step's exogenous grid prices from the cells' resolved timelines
        //    (telemetry fields keep the values of the previous step). With a
        //    price-event-free scenario every site pays the base price, the router's
        //    price spread is zero, and routing is bit-identical to a fleet without the
        //    price signal.
        for (signal, cell) in self.signals.iter_mut().zip(&self.cells) {
            signal.grid_price_per_mwh = cell.timeline().grid_price_at(now);
        }

        // 1. Route this step's arrivals using the signals of the previous step.
        self.geo.begin_step(self.cells.len());
        while let Some(front) = self.stream.front() {
            if front.arrival > now {
                break;
            }
            let vm = self.stream.pop_front().expect("front checked");
            let site = match self.config.geo {
                GeoPolicy::Pinned(site) => site,
                GeoPolicy::RoundRobin => self.splitter.next_site(),
                GeoPolicy::Headroom => {
                    let site = self.geo.choose(&self.signals);
                    if !self.signals[site].in_emergency()
                        && self.signals.iter().any(SiteSignals::in_emergency)
                    {
                        self.emergency_diversions += 1;
                    }
                    site
                }
            };
            self.routed[site] += 1;
            self.cells[site].enqueue(vm);
        }

        // 1b. Generate this step's fabric requests fleet-wide and route them per request
        //     (in millisecond-timestamp order, FIFO on ties) into the cells' inboxes.
        //     Routing happens before the cells step, so serial and `parallel` execution
        //     see identical per-cell event sequences.
        if let Some(generator) = self.fabric_generator.as_mut() {
            generator.generate_step(
                now,
                self.config.base.step,
                &self.base_timeline,
                &mut self.fabric_queue,
            );
        }
        if !self.fabric_queue.is_empty() {
            let end_ms =
                (now.as_minutes() + self.config.base.step.as_minutes()) * MS_PER_MINUTE;
            let geo_policy = self.config.geo;
            // Publish each site's effective per-endpoint serving capacity (from the
            // previous step, like every other routing signal) for the failover spread.
            for (site, cell) in self.cells.iter().enumerate() {
                self.geo.set_request_capacity(site, cell.fabric_effective_replicas());
            }
            let cells = &mut self.cells;
            let signals = &self.signals;
            let geo = &mut self.geo;
            let request_splitter = &mut self.request_splitter;
            // `drain_until` is inclusive; the step window is half-open.
            self.fabric_queue.drain_until(end_ms - 1, |time_ms, request| {
                let site = match geo_policy {
                    GeoPolicy::Pinned(site) => site,
                    GeoPolicy::RoundRobin => request_splitter.next_site(),
                    GeoPolicy::Headroom => {
                        geo.choose_request(signals, request.endpoint as usize)
                    }
                };
                cells[site].deliver_request(time_ms, request);
            });
        }

        // 2. Step every cell (the outer across-datacenter parallel dimension).
        step_cells(&mut self.cells, now);

        // 3. Refresh the per-site signals in fixed site order. Cells report price-less
        //    telemetry; the step's exogenous price is re-read from the timelines.
        for (signal, cell) in self.signals.iter_mut().zip(&self.cells) {
            *signal = cell.site_signals();
            signal.grid_price_per_mwh = cell.timeline().grid_price_at(now);
        }
    }

    /// Runs the whole fleet experiment and returns the fleet report.
    #[must_use]
    pub fn run(mut self) -> FleetReport {
        let mut clock = SimClock::new(self.config.base.step, self.config.base.duration);
        loop {
            let now = clock.now();
            self.step(now);
            if clock.tick().is_none() {
                break;
            }
        }
        let sites: Vec<RunReport> =
            self.cells.into_iter().map(ClusterSimulator::into_report).collect();
        FleetReport {
            geo: self.config.geo.label(),
            site_names: self.config.sites.iter().map(|s| s.name.clone()).collect(),
            sites,
            vms_routed: self.routed,
            emergency_diversions: self.emergency_diversions,
        }
    }
}

/// Steps every cell once. With the `parallel` feature and at least two cells and cores,
/// cells run on scoped threads; cells are fully independent within a step (routing
/// happened before, signal refresh happens after, in fixed site order), so the result is
/// bit-identical to the serial order.
#[cfg(feature = "parallel")]
fn step_cells(cells: &mut [ClusterSimulator], now: SimTime) {
    let threads =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cells.len() < 2 || threads < 2 {
        for cell in cells {
            cell.step_at(now);
        }
        return;
    }
    // Chunk cells across at most `threads` workers so large fleets don't oversubscribe
    // the scheduler with one thread per datacenter.
    let chunk = cells.len().div_ceil(threads.min(cells.len()));
    std::thread::scope(|scope| {
        for group in cells.chunks_mut(chunk) {
            scope.spawn(move || {
                for cell in group {
                    cell.step_at(now);
                }
            });
        }
    });
}

#[cfg(not(feature = "parallel"))]
fn step_cells(cells: &mut [ClusterSimulator], now: SimTime) {
    for cell in cells {
        cell.step_at(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentConfig, SiteConfig};
    use dc_sim::weather::Climate;
    use simkit::events::EventKind;
    use tapas::policy::Policy;

    fn smoke_fleet(sites: usize) -> FleetConfig {
        let mut base = ExperimentConfig::small_smoke_test();
        base.policy = Policy::Tapas;
        FleetConfig::evaluation(base, sites)
    }

    #[test]
    fn three_site_fleet_smoke_run_records_per_site_metrics() {
        let report = FleetSimulator::new(smoke_fleet(3)).run();
        assert_eq!(report.site_count(), 3);
        assert_eq!(report.geo, "Headroom");
        for site in &report.sites {
            assert_eq!(site.max_gpu_temp.len(), 24 + 1);
            assert!(site.peak_temperature_c() > 20.0);
        }
        // The fleet-sized stream spreads across every site.
        assert!(report.vms_routed.iter().all(|&n| n > 0), "{:?}", report.vms_routed);
        assert!(report.total_requests_served() > 0);
        assert!(report.sites.iter().any(|s| s.events.count(EventKind::VmPlaced) > 0));
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let a = FleetSimulator::new(smoke_fleet(3)).run();
        let b = FleetSimulator::new(smoke_fleet(3)).run();
        assert_eq!(a.vms_routed, b.vms_routed);
        assert_eq!(a.emergency_diversions, b.emergency_diversions);
        for (site_a, site_b) in a.sites.iter().zip(&b.sites) {
            assert_eq!(site_a.max_gpu_temp.values(), site_b.max_gpu_temp.values());
            assert_eq!(site_a.requests_served, site_b.requests_served);
        }
        let json_a = serde_json::to_string(&a).expect("serialize");
        let json_b = serde_json::to_string(&b).expect("serialize");
        assert_eq!(json_a, json_b, "fleet reports must serialize identically");
    }

    #[test]
    fn round_robin_split_follows_the_arrival_shares() {
        let mut fleet = smoke_fleet(2).with_geo(GeoPolicy::RoundRobin);
        fleet.sites[0].arrival_share = 3.0;
        fleet.sites[1].arrival_share = 1.0;
        let report = FleetSimulator::new(fleet).run();
        let [a, b] = [report.vms_routed[0], report.vms_routed[1]];
        assert!(a + b > 0);
        // Smooth weighted round-robin tracks the 3:1 shares to within one round.
        assert!(a.abs_diff(3 * b) <= 4, "split {a}:{b} should track 3:1");
    }

    #[test]
    fn pinned_geo_routes_everything_to_one_site() {
        let report =
            FleetSimulator::new(smoke_fleet(3).with_geo(GeoPolicy::Pinned(1))).run();
        assert_eq!(report.vms_routed[0], 0);
        assert_eq!(report.vms_routed[2], 0);
        assert!(report.vms_routed[1] > 0);
        // The untouched sites still simulate (idle physics) but serve nothing.
        assert_eq!(report.sites[0].requests_served, 0);
        assert!(report.sites[1].requests_served > 0);
    }

    #[test]
    fn single_site_fleet_wraps_the_plain_simulator() {
        let base = ExperimentConfig::small_smoke_test();
        let fleet = FleetSimulator::new(FleetConfig::single_site(base.clone())).run();
        let single = ClusterSimulator::new(base).run();
        assert_eq!(
            serde_json::to_string(&fleet.sites[0]).expect("serialize"),
            serde_json::to_string(&single).expect("serialize"),
            "a 1-site fleet must reproduce the single-datacenter run bit for bit"
        );
        assert_eq!(fleet.total_requests_served(), single.requests_served);
    }

    #[test]
    fn heterogeneous_site_layouts_are_supported() {
        let mut fleet = smoke_fleet(2);
        // Site 1 gets twice the racks of site 0.
        fleet.sites[1].layout.racks_per_row *= 2;
        let report = FleetSimulator::new(fleet).run();
        assert_eq!(report.site_count(), 2);
        assert!(report.vms_routed[1] > 0);
    }

    #[test]
    fn fleet_signals_reflect_site_state_after_a_step() {
        let mut sim = FleetSimulator::new(smoke_fleet(3));
        let cold: Vec<u32> = sim.signals().iter().map(|s| s.free_servers).collect();
        assert!(cold.iter().all(|&f| f == 8), "all sites start fully free: {cold:?}");
        sim.step(SimTime::ZERO);
        let signals = sim.signals();
        assert_eq!(signals.len(), 3);
        // After the initial placement wave, free capacity dropped somewhere and the
        // telemetry is live (cold-start signals report zero load).
        assert!(signals.iter().any(|s| s.free_servers < 8));
        assert!(signals.iter().all(|s| s.power_headroom_kw > 0.0));
        assert!(signals.iter().any(|s| s.dc_load > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_fleet_is_rejected() {
        let _ = FleetSimulator::new(FleetConfig {
            base: ExperimentConfig::small_smoke_test(),
            sites: Vec::<SiteConfig>::new(),
            geo: GeoPolicy::RoundRobin,
            arrival_scale: 1.0,
        });
    }

    #[test]
    fn distinct_climates_produce_distinct_site_weather() {
        use dc_sim::weather::WeatherModel;
        let fleet = smoke_fleet(3);
        assert_eq!(fleet.sites[0].climate, Climate::hot());
        assert_eq!(fleet.sites[2].climate, Climate::cold());
        let mut hot = WeatherModel::new(fleet.sites[0].climate, fleet.sites[0].seed);
        let mut cold = WeatherModel::new(fleet.sites[2].climate, fleet.sites[2].seed);
        let hot_mean: f64 = (0..48)
            .map(|h| hot.outside_temp(SimTime::from_hours(h)).value())
            .sum::<f64>()
            / 48.0;
        let cold_mean: f64 = (0..48)
            .map(|h| cold.outside_temp(SimTime::from_hours(h)).value())
            .sum::<f64>()
            / 48.0;
        assert!(hot_mean > cold_mean + 10.0);
    }
}
