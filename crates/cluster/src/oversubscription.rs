//! The oversubscription sweep of Fig. 21.
//!
//! Starting from a datacenter whose cooling and power are provisioned for the baseline
//! demand, racks are added (0–50 % more servers) without adding cooling or power capacity.
//! The metric is the fraction of time the datacenter spends under thermal or power capping.
//! The paper finds that the Baseline starts capping heavily beyond ≈20 % oversubscription
//! while TAPAS keeps capping below 0.7 % of the time up to ≈40 %.

use crate::experiment::ExperimentConfig;
use crate::metrics::RunReport;
use crate::simulator::ClusterSimulator;
use serde::{Deserialize, Serialize};
use tapas::policy::Policy;

/// One row of the oversubscription sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OversubscriptionPoint {
    /// Extra servers added, as a fraction of the baseline (0.0 = no oversubscription).
    pub oversubscription: f64,
    /// The policy evaluated.
    pub policy: String,
    /// Fraction of time under thermal capping.
    pub thermal_capped_fraction: f64,
    /// Fraction of time under power capping.
    pub power_capped_fraction: f64,
    /// Mean result quality delivered.
    pub mean_quality: f64,
}

/// Runs the sweep for one policy over the given oversubscription levels using `base` as the
/// non-oversubscribed experiment.
#[must_use]
pub fn sweep(
    base: &ExperimentConfig,
    policy: Policy,
    levels: &[f64],
) -> Vec<OversubscriptionPoint> {
    levels
        .iter()
        .map(|&level| {
            let mut config = base.clone().with_oversubscription(level);
            config.policy = policy;
            let report = ClusterSimulator::new(config).run();
            point_from_report(level, &report)
        })
        .collect()
}

/// Converts a run report into a sweep point.
#[must_use]
pub fn point_from_report(level: f64, report: &RunReport) -> OversubscriptionPoint {
    OversubscriptionPoint {
        oversubscription: level,
        policy: report.policy.clone(),
        thermal_capped_fraction: report.thermal_capped_time_fraction(),
        power_capped_fraction: report.power_capped_time_fraction(),
        mean_quality: report.mean_quality(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_all_levels_for_a_small_cluster() {
        let base = ExperimentConfig::small_smoke_test();
        let points = sweep(&base, Policy::Baseline, &[0.0, 0.25]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].oversubscription, 0.0);
        assert_eq!(points[1].oversubscription, 0.25);
        assert!(points.iter().all(|p| p.policy == "Baseline"));
        assert!(points
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.thermal_capped_fraction)));
        assert!(points
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.power_capped_fraction)));
    }

    #[test]
    fn capping_does_not_decrease_with_more_oversubscription() {
        // On the small smoke-test cluster capping may be zero at both levels; the invariant
        // we check is monotonicity (more servers on the same budget can only cap more).
        let base = ExperimentConfig::small_smoke_test();
        let points = sweep(&base, Policy::Baseline, &[0.0, 0.5]);
        assert!(points[1].power_capped_fraction >= points[0].power_capped_fraction - 1e-9);
    }
}
