//! Request-fabric batch scheduler: continuous batching with KV-cache admission.
//!
//! [`InstanceEngine`](crate::engine::InstanceEngine) models one vLLM-style instance with
//! float-second timestamps and an up-front KV reservation (`total_tokens` charged at
//! admission). The request fabric needs something slightly different: an aggregate,
//! *event-timestamped* scheduler for all the replicas an endpoint runs at a site, on an
//! integer-millisecond clock that composes with the fabric's
//! [`EventQueue`](simkit::queue::EventQueue), and with KV-cache occupancy tracked the way
//! "Online Scheduling for LLM Inference with KV Cache Constraints" (PAPERS.md) models it —
//! **incrementally**: the prompt is pinned at admission, occupancy grows by one token per
//! running sequence per decode iteration, and the sequence's whole footprint is evicted on
//! completion.
//!
//! Admission is still safe against the incremental growth: the scheduler tracks the
//! *committed peak* (current occupancy plus the remaining decode growth of every running
//! sequence) and admits a request only when the committed peak plus the request's full
//! footprint fits. Because every admitted sequence runs to completion, observed occupancy
//! can never exceed capacity — the invariant `tests/request_fabric.rs` pins — while the
//! occupancy curve itself is the incremental prefill + per-token-growth + eviction shape.

use crate::config::InstanceConfig;
use crate::hardware::GpuHardware;
use crate::perf::PerfModel;
use std::collections::VecDeque;

/// KV-cache capacity in tokens of one replica: the HBM left after weights are resident
/// (with a 10 % activation margin), divided by the per-token KV footprint. Identical to
/// the derivation [`crate::engine::InstanceEngine::new`] uses.
#[must_use]
pub fn kv_capacity_tokens(config: &InstanceConfig, gpu: &GpuHardware) -> usize {
    let total_hbm_gb = gpu.memory_capacity_gb * config.parallelism.gpus() as f64;
    let free_gb = (total_hbm_gb - config.variant.weight_bytes_gb()).max(1.0) * 0.9;
    (free_gb * 1.0e9 / config.variant.kv_bytes_per_token()).max(1024.0) as usize
}

/// A request that finished serving, with integer-millisecond per-request timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchCompletion {
    /// Caller-provided cookie identifying the request (e.g. a request id).
    pub tag: u64,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Output length in tokens.
    pub output_tokens: usize,
    /// When the request arrived at the scheduler (fabric event time).
    pub arrival_ms: u64,
    /// When the first output token was produced.
    pub first_token_ms: u64,
    /// When the final output token was produced.
    pub finish_ms: u64,
}

impl BatchCompletion {
    /// Time to first token in milliseconds.
    #[must_use]
    pub fn ttft_ms(&self) -> u64 {
        self.first_token_ms.saturating_sub(self.arrival_ms)
    }

    /// Mean time between output tokens in milliseconds (0 for single-token outputs).
    #[must_use]
    pub fn mean_tbt_ms(&self) -> f64 {
        if self.output_tokens > 1 {
            (self.finish_ms - self.first_token_ms) as f64 / (self.output_tokens - 1) as f64
        } else {
            0.0
        }
    }

    /// End-to-end latency in milliseconds.
    #[must_use]
    pub fn latency_ms(&self) -> u64 {
        self.finish_ms.saturating_sub(self.arrival_ms)
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    tag: u64,
    prompt_tokens: usize,
    output_tokens: usize,
    arrival_ms: u64,
    /// Earliest admission time: equals `arrival_ms` for fresh requests, or the
    /// deterministic backoff re-delivery time for preempted requeues.
    ready_ms: u64,
    /// Admission attempts consumed so far (0 = never admitted).
    attempts: u32,
}

#[derive(Debug, Clone, Copy)]
struct Active {
    tag: u64,
    prompt_tokens: usize,
    output_tokens: usize,
    generated: usize,
    arrival_ms: u64,
    first_token_ms: Option<u64>,
    /// Monotone admission ordinal; preemption evicts the highest (LIFO), which
    /// `Vec::swap_remove` order cannot provide.
    seq: u64,
    attempts: u32,
}

/// Fault-tolerance counters a scheduler accumulates over its lifetime: preemption and
/// eviction volume (wasted work), retry/timeout outcomes and shed requests. All zero in
/// a failure-free run, which keeps failure-free artifacts byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerFaults {
    /// Sequences evicted mid-flight (a request preempted twice counts twice).
    pub preemptions: u64,
    /// KV tokens resident at eviction time (prompt + generated so far), summed.
    pub evicted_tokens: u64,
    /// Prompt tokens that must re-prefill after eviction, summed.
    pub wasted_prefill_tokens: u64,
    /// Decode tokens generated then thrown away by eviction, summed.
    pub wasted_decode_tokens: u64,
    /// Preempted requests successfully requeued for another attempt.
    pub retries: u64,
    /// Requests dropped after exhausting the retry budget (or that can never fit the
    /// current capacity) — counted, never silent.
    pub timeouts: u64,
    /// Requests shed at admission because their deadline had already passed.
    pub shed: u64,
}

/// Degradation levels above this are clamped; each level tightens the admission budget
/// by 5 %, so the floor is 80 % of capacity.
const MAX_DEGRADE_LEVEL: u32 = 4;

/// Cap on the exponential backoff shift so the delay cannot overflow or exceed
/// `backoff_base_ms << 8`.
const MAX_BACKOFF_SHIFT: u32 = 8;

/// Aggregate continuous-batching scheduler for the replicas of one endpoint at one site.
///
/// Time is an integer millisecond clock; iteration durations come from the same analytic
/// [`PerfModel`] as the per-instance engine (rounded up to whole milliseconds), so the
/// schedule is exactly reproducible for a pinned arrival stream — no floats accumulate in
/// the clock.
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    config: InstanceConfig,
    perf: PerfModel,
    kv_capacity_per_replica: usize,
    replicas: usize,
    kv_in_use: usize,
    kv_committed: usize,
    queued_tokens: usize,
    queue: VecDeque<Pending>,
    running: Vec<Active>,
    now_ms: u64,
    completed_total: u64,
    admission_seq: u64,
    faults: SchedulerFaults,
    /// Deadline shedding: a request whose age at admission exceeds this is shed.
    /// 0 disables shedding (and graceful degradation) entirely — the default, so
    /// fabric runs without an explicit fault policy behave exactly as before.
    shed_deadline_ms: u64,
    /// Preemption retry budget: a request evicted more than this many times is dropped
    /// (counted as a timeout).
    max_retries: u32,
    /// Base of the exponential requeue backoff (doubles per attempt).
    backoff_base_ms: u64,
    /// Current graceful-degradation level (0 = none); raised under sustained pressure,
    /// lowered when pressure clears. Only consulted when shedding is enabled.
    degrade_level: u32,
}

impl BatchScheduler {
    /// Creates a scheduler for `replicas` instances of `config` on a GPU generation.
    #[must_use]
    pub fn new(config: InstanceConfig, gpu: &GpuHardware, replicas: usize) -> Self {
        Self {
            config,
            perf: PerfModel::new(*gpu),
            kv_capacity_per_replica: kv_capacity_tokens(&config, gpu),
            replicas: replicas.max(1),
            kv_in_use: 0,
            kv_committed: 0,
            queued_tokens: 0,
            queue: VecDeque::new(),
            running: Vec::new(),
            now_ms: 0,
            completed_total: 0,
            admission_seq: 0,
            faults: SchedulerFaults::default(),
            shed_deadline_ms: 0,
            max_retries: 3,
            backoff_base_ms: 256,
            degrade_level: 0,
        }
    }

    /// The scheduler's configuration.
    #[must_use]
    pub fn config(&self) -> &InstanceConfig {
        &self.config
    }

    /// The performance model backing the scheduler.
    #[must_use]
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// Aggregate KV-cache capacity in tokens across the current replica count.
    #[must_use]
    pub fn kv_capacity(&self) -> usize {
        self.kv_capacity_per_replica * self.replicas
    }

    /// KV-cache tokens currently resident (prompts of running sequences plus every token
    /// they have generated so far).
    #[must_use]
    pub fn kv_in_use(&self) -> usize {
        self.kv_in_use
    }

    /// Committed KV peak: current occupancy plus the remaining decode growth of every
    /// running sequence. Admission compares this, not raw occupancy, against capacity.
    #[must_use]
    pub fn kv_committed(&self) -> usize {
        self.kv_committed
    }

    /// Requests waiting for admission.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Sequences currently in the running batch.
    #[must_use]
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Requests completed over the scheduler's lifetime.
    #[must_use]
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// Current scheduler time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Demand pressure on the endpoint's KV budget: committed peak plus the queued
    /// backlog's footprint, over capacity. 1.0 means admission is about to stall;
    /// values above it measure backlog depth. Saturates at 4.0.
    #[must_use]
    pub fn pressure(&self) -> f64 {
        let demand = (self.kv_committed + self.queued_tokens) as f64;
        (demand / self.kv_capacity() as f64).min(4.0)
    }

    /// Rescales the scheduler to a new replica count (pool grew, shrank, or replicas
    /// failed).
    ///
    /// A downsize that strands the committed KV peak above the new capacity — or the
    /// running batch above the surviving replicas' decode slots (`max_batch_size ×
    /// replicas`; a killed replica's slots die with it) — preempts running sequences
    /// newest-first (LIFO by admission ordinal) until both invariants hold again: each
    /// victim's footprint is evicted, its generated tokens are counted as wasted work,
    /// and the request is requeued with its **original** `arrival_ms` plus a
    /// deterministic backoff — it will re-prefill from scratch on re-admission. Victims
    /// over the retry budget are dropped and counted as timeouts, never silently.
    pub fn set_replicas(&mut self, replicas: usize) {
        self.replicas = replicas.max(1);
        self.preempt_to_fit();
    }

    /// Configures the fault-tolerance policy. `shed_deadline_ms` is the per-request
    /// admission deadline (0 disables deadline shedding and graceful degradation);
    /// `max_retries` bounds how often a preempted request is requeued before it is
    /// dropped as a timeout; `backoff_base_ms` seeds the exponential requeue backoff.
    pub fn set_fault_policy(
        &mut self,
        shed_deadline_ms: u64,
        max_retries: u32,
        backoff_base_ms: u64,
    ) {
        self.shed_deadline_ms = shed_deadline_ms;
        self.max_retries = max_retries;
        self.backoff_base_ms = backoff_base_ms.max(1);
    }

    /// Lifetime fault-tolerance counters (all zero in a failure-free run).
    #[must_use]
    pub fn faults(&self) -> SchedulerFaults {
        self.faults
    }

    /// Current graceful-degradation level (0 when shedding is disabled or pressure is
    /// low; each level tightens the admission budget by 5 %, floor 80 %).
    #[must_use]
    pub fn degrade_level(&self) -> u32 {
        self.degrade_level
    }

    /// One graceful-degradation tick, called once per serve window by the fabric:
    /// sustained KV pressure above 1.0 tightens the admission budget one notch (5 % per
    /// level, floor 80 %), and a clear window relaxes it one notch. A no-op unless
    /// deadline shedding is enabled — degradation exists to shed *less* by admitting
    /// more conservatively first.
    pub fn note_pressure_window(&mut self) {
        if self.shed_deadline_ms == 0 {
            return;
        }
        if self.pressure() > 1.0 {
            self.degrade_level = (self.degrade_level + 1).min(MAX_DEGRADE_LEVEL);
        } else {
            self.degrade_level = self.degrade_level.saturating_sub(1);
        }
    }

    /// The admission budget after graceful degradation. The full capacity when shedding
    /// is disabled or the batch is idle (tightening an empty scheduler would only stall
    /// the queue without protecting any in-flight work).
    fn admission_capacity(&self) -> usize {
        if self.shed_deadline_ms == 0 || self.degrade_level == 0 || self.running.is_empty() {
            self.kv_capacity()
        } else {
            self.kv_capacity() * (20 - self.degrade_level as usize) / 20
        }
    }

    /// Preempts running sequences newest-first until `kv_committed <= kv_capacity` and
    /// `running_len <= max_batch` both hold. KV overflow binds when footprints are large
    /// (long contexts); the slot bound binds when replica failures wipe out most of a
    /// deep pool — the survivors cannot decode the dead replicas' sequences.
    fn preempt_to_fit(&mut self) {
        while (self.kv_committed > self.kv_capacity() || self.running.len() > self.max_batch())
            && !self.running.is_empty()
        {
            let victim_index = self
                .running
                .iter()
                .enumerate()
                .max_by_key(|(_, seq)| seq.seq)
                .map(|(index, _)| index)
                .expect("running is non-empty");
            let victim = self.running.swap_remove(victim_index);
            self.kv_in_use -= victim.prompt_tokens + victim.generated;
            self.kv_committed -= victim.prompt_tokens + victim.output_tokens;
            self.faults.preemptions += 1;
            self.faults.evicted_tokens += (victim.prompt_tokens + victim.generated) as u64;
            self.faults.wasted_prefill_tokens += victim.prompt_tokens as u64;
            self.faults.wasted_decode_tokens += victim.generated as u64;
            let attempts = victim.attempts + 1;
            if attempts > self.max_retries {
                self.faults.timeouts += 1;
                continue;
            }
            self.faults.retries += 1;
            let backoff = self.backoff_base_ms << (attempts - 1).min(MAX_BACKOFF_SHIFT);
            self.queued_tokens += victim.prompt_tokens + victim.output_tokens;
            // Victims are evicted newest-first and each goes to the queue front, so the
            // requeued block ends up oldest-first — the queue stays arrival-ordered.
            self.queue.push_front(Pending {
                tag: victim.tag,
                prompt_tokens: victim.prompt_tokens,
                output_tokens: victim.output_tokens,
                arrival_ms: victim.arrival_ms,
                ready_ms: self.now_ms + backoff,
                attempts,
            });
        }
    }

    /// Enqueues a request. `arrival_ms` must be non-decreasing across calls — the fabric
    /// drains its event queue in timestamp order, which guarantees it.
    pub fn offer(&mut self, tag: u64, prompt_tokens: usize, output_tokens: usize, arrival_ms: u64) {
        debug_assert!(
            self.queue.back().is_none_or(|p| p.arrival_ms <= arrival_ms),
            "requests must be offered in arrival order"
        );
        let output_tokens = output_tokens.max(1);
        self.queued_tokens += prompt_tokens + output_tokens;
        self.queue.push_back(Pending {
            tag,
            prompt_tokens,
            output_tokens,
            arrival_ms,
            ready_ms: arrival_ms,
            attempts: 0,
        });
    }

    fn max_batch(&self) -> usize {
        self.config.max_batch_size * self.replicas
    }

    /// Per-replica share of an aggregate quantity (batch slots or prompt tokens).
    fn per_replica(&self, aggregate: usize) -> usize {
        aggregate.div_ceil(self.replicas)
    }

    /// Admits queued requests while batch slots and committed KV headroom allow; returns
    /// the admitted prompt tokens (they prefill in the current iteration). Requests
    /// whose deadline has already passed are shed here (when shedding is enabled), and
    /// requests that can never fit the current capacity are dropped as timeouts rather
    /// than blocking the queue forever.
    fn admit(&mut self) -> usize {
        let mut admitted_prompt_tokens = 0;
        while self.running.len() < self.max_batch() {
            let Some(front) = self.queue.front().copied() else { break };
            if front.ready_ms > self.now_ms {
                break;
            }
            let footprint = front.prompt_tokens + front.output_tokens;
            if self.shed_deadline_ms > 0
                && self.now_ms > front.arrival_ms + self.shed_deadline_ms
            {
                self.queue.pop_front();
                self.queued_tokens -= footprint;
                self.faults.shed += 1;
                continue;
            }
            if self.kv_committed + footprint > self.admission_capacity() {
                if self.running.is_empty() && footprint > self.kv_capacity() {
                    // Larger than the whole (possibly downsized) cache: it can never be
                    // admitted, so drop it as a timeout instead of stalling the queue.
                    self.queue.pop_front();
                    self.queued_tokens -= footprint;
                    self.faults.timeouts += 1;
                    continue;
                }
                break;
            }
            self.queue.pop_front();
            self.queued_tokens -= footprint;
            self.kv_committed += footprint;
            // Incremental accounting: the prompt is pinned now, decode tokens as they
            // are produced. A requeued victim re-prefills from scratch here.
            self.kv_in_use += front.prompt_tokens;
            admitted_prompt_tokens += front.prompt_tokens;
            let seq = self.admission_seq;
            self.admission_seq += 1;
            self.running.push(Active {
                tag: front.tag,
                prompt_tokens: front.prompt_tokens,
                output_tokens: front.output_tokens,
                generated: 0,
                arrival_ms: front.arrival_ms,
                first_token_ms: None,
                seq,
                attempts: front.attempts,
            });
        }
        admitted_prompt_tokens
    }

    /// Advances the scheduler to `deadline_ms`, appending finished requests to `out`.
    ///
    /// The final iteration may overshoot the deadline (iterations are atomic); the clock
    /// carries across calls, so the next window resumes exactly where this one stopped.
    /// A deadline at or before the current clock (the previous window overshot past it)
    /// is a no-op.
    pub fn advance_to(&mut self, deadline_ms: u64, out: &mut Vec<BatchCompletion>) {
        while self.now_ms < deadline_ms {
            let admitted_prompt_tokens = self.admit();

            if self.running.is_empty() {
                // Idle: jump to the next ready time (arrival, or backoff re-delivery
                // for a requeued victim) or the deadline, whichever is earlier. A ready
                // front is always consumed by `admit` (admitted, shed or dropped), so
                // the jump target is strictly in the future — no livelock.
                match self.queue.front() {
                    Some(front) if front.ready_ms <= deadline_ms => {
                        self.now_ms = front.ready_ms;
                        continue;
                    }
                    _ => {
                        self.now_ms = deadline_ms;
                        break;
                    }
                }
            }

            // One scheduler iteration: prefill newly admitted prompts, then one decode
            // step for the whole running batch. Replicas split the batch evenly, so the
            // aggregate iteration time is the per-replica share's time.
            let prefill_s = if admitted_prompt_tokens > 0 {
                self.perf
                    .prefill_time_s(&self.config, self.per_replica(admitted_prompt_tokens))
            } else {
                0.0
            };
            let mean_context = (self.kv_in_use / self.running.len()).max(1);
            let decode_s = self.perf.decode_step_time_s(
                &self.config,
                self.per_replica(self.running.len()),
                mean_context,
            );
            let iteration_ms = (((prefill_s + decode_s) * 1000.0).ceil() as u64).max(1);
            self.now_ms += iteration_ms;

            // Every running sequence produces one token (+1 KV token each); completed
            // sequences evict their whole footprint.
            let now_ms = self.now_ms;
            self.kv_in_use += self.running.len();
            let mut index = 0;
            while index < self.running.len() {
                let seq = &mut self.running[index];
                seq.generated += 1;
                if seq.first_token_ms.is_none() {
                    seq.first_token_ms = Some(now_ms);
                }
                if seq.generated >= seq.output_tokens {
                    let seq = self.running.swap_remove(index);
                    let footprint = seq.prompt_tokens + seq.output_tokens;
                    self.kv_in_use -= footprint;
                    self.kv_committed -= footprint;
                    self.completed_total += 1;
                    out.push(BatchCompletion {
                        tag: seq.tag,
                        prompt_tokens: seq.prompt_tokens,
                        output_tokens: seq.output_tokens,
                        arrival_ms: seq.arrival_ms,
                        first_token_ms: seq.first_token_ms.expect("set above"),
                        finish_ms: now_ms,
                    });
                } else {
                    index += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(replicas: usize) -> BatchScheduler {
        BatchScheduler::new(InstanceConfig::default_70b(), &GpuHardware::a100(), replicas)
    }

    #[test]
    fn capacity_matches_the_instance_engine_derivation() {
        use crate::engine::InstanceEngine;
        let config = InstanceConfig::default_70b();
        let gpu = GpuHardware::a100();
        let engine = InstanceEngine::new(config, &gpu);
        assert_eq!(kv_capacity_tokens(&config, &gpu), engine.kv_capacity_tokens());
        assert_eq!(scheduler(1).kv_capacity(), engine.kv_capacity_tokens());
        assert_eq!(scheduler(3).kv_capacity(), 3 * engine.kv_capacity_tokens());
    }

    #[test]
    fn idle_scheduler_jumps_to_the_deadline() {
        let mut s = scheduler(1);
        let mut out = Vec::new();
        s.advance_to(10_000, &mut out);
        assert!(out.is_empty());
        assert_eq!(s.now_ms(), 10_000);
        assert_eq!(s.kv_in_use(), 0);
    }

    #[test]
    fn single_request_completes_with_sane_timings() {
        let mut s = scheduler(1);
        s.offer(7, 512, 64, 1_000);
        let mut out = Vec::new();
        s.advance_to(60_000, &mut out);
        assert_eq!(out.len(), 1);
        let done = out[0];
        assert_eq!(done.tag, 7);
        assert!(done.first_token_ms > done.arrival_ms);
        assert!(done.finish_ms > done.first_token_ms);
        assert!(done.ttft_ms() > 0);
        assert!(done.mean_tbt_ms() > 0.0);
        assert_eq!(done.latency_ms(), done.finish_ms - 1_000);
        // Everything evicted on completion.
        assert_eq!(s.kv_in_use(), 0);
        assert_eq!(s.kv_committed(), 0);
        assert_eq!(s.completed_total(), 1);
    }

    #[test]
    fn occupancy_grows_incrementally_and_never_exceeds_capacity() {
        // A fast configuration with prompts sized so the KV budget (not the batch-size
        // cap) is the binding admission constraint.
        let mut s =
            BatchScheduler::new(InstanceConfig::small_fallback(), &GpuHardware::a100(), 1);
        let prompt = s.kv_capacity() / 12;
        let output = 200;
        let footprint = prompt + output;
        let count = ((3 * s.kv_capacity()) / footprint).max(30) as u64;
        for i in 0..count {
            s.offer(i, prompt, output, 0);
        }
        let mut out = Vec::new();
        let mut prev_in_use = 0;
        let mut saw_growth_between_observations = false;
        let mut peak_committed = 0;
        let mut window = 0u64;
        while s.completed_total() < count {
            window += 1;
            assert!(window < 50_000, "scheduler failed to drain the backlog");
            s.advance_to(window * 500, &mut out);
            assert!(s.kv_in_use() <= s.kv_capacity(), "occupancy exceeded capacity");
            assert!(s.kv_committed() <= s.kv_capacity(), "commitment exceeded capacity");
            if s.kv_in_use() > prev_in_use && prev_in_use > 0 {
                saw_growth_between_observations = true;
            }
            prev_in_use = s.kv_in_use();
            peak_committed = peak_committed.max(s.kv_committed());
        }
        assert_eq!(out.len() as u64, count);
        assert!(saw_growth_between_observations, "decode growth never observed");
        // The KV constraint actually bound admission at some point.
        assert!(peak_committed > s.kv_capacity() / 2);
        assert_eq!(s.kv_in_use(), 0);
        assert_eq!(s.kv_committed(), 0);
    }

    #[test]
    fn draining_everything_frees_the_cache() {
        let mut s = scheduler(2);
        for i in 0..40 {
            s.offer(i, 256, 32, i * 50);
        }
        let mut out = Vec::new();
        s.advance_to(600_000, &mut out);
        assert_eq!(out.len(), 40);
        assert_eq!(s.kv_in_use(), 0);
        assert_eq!(s.kv_committed(), 0);
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.running_len(), 0);
    }

    #[test]
    fn same_offers_produce_identical_schedules() {
        let run = || {
            let mut s = scheduler(2);
            for i in 0..64 {
                s.offer(i, 300 + (i as usize * 37) % 900, 40 + (i as usize * 13) % 120, i * 111);
            }
            let mut out = Vec::new();
            for window in 1..=20u64 {
                s.advance_to(window * 5_000, &mut out);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn more_replicas_serve_a_burst_faster() {
        let burst = |replicas| {
            let mut s = scheduler(replicas);
            for i in 0..128 {
                s.offer(i, 512, 128, 0);
            }
            let mut out = Vec::new();
            s.advance_to(3_600_000, &mut out);
            assert_eq!(out.len(), 128);
            out.iter().map(|c| c.finish_ms).max().unwrap()
        };
        assert!(burst(4) < burst(1));
    }

    #[test]
    fn queueing_delay_shows_up_in_ttft() {
        let mut s = scheduler(1);
        // Saturate, then measure a late arrival's TTFT.
        for i in 0..400 {
            s.offer(i, 2_000, 200, 0);
        }
        let mut out = Vec::new();
        s.advance_to(600_000, &mut out);
        let first = out.iter().find(|c| c.tag == 0).expect("first request completes");
        let ttfts: Vec<u64> = out.iter().map(|c| c.ttft_ms()).collect();
        let worst = *ttfts.iter().max().unwrap();
        assert!(worst > 4 * first.ttft_ms(), "queueing should inflate tail TTFT");
    }

    #[test]
    fn pressure_reflects_backlog() {
        let mut s = scheduler(1);
        assert_eq!(s.pressure(), 0.0);
        for i in 0..10_000 {
            s.offer(i, 4_000, 400, 0);
        }
        assert!(s.pressure() > 1.0);
        assert!(s.pressure() <= 4.0);
    }

    #[test]
    fn downsize_under_load_preempts_to_fit_and_still_finishes_everything() {
        let mut s = scheduler(4);
        for i in 0..64 {
            s.offer(i, 4_000, 100, 0);
        }
        let mut out = Vec::new();
        s.advance_to(2_000, &mut out);
        assert!(s.running_len() > 0);
        s.set_replicas(1);
        // Satellite fix: the shrink may no longer strand `kv_committed` above the new
        // capacity — preemption restores the invariant immediately.
        assert!(
            s.kv_committed() <= s.kv_capacity(),
            "downsize left committed {} above capacity {}",
            s.kv_committed(),
            s.kv_capacity()
        );
        assert!(s.kv_in_use() <= s.kv_committed());
        let faults = s.faults();
        assert_eq!(faults.preemptions, faults.retries + faults.timeouts);
        assert_eq!(faults.wasted_prefill_tokens, faults.preemptions * 4_000);
        s.advance_to(3_600_000, &mut out);
        // A single shrink preempts each victim at most once, well inside the retry
        // budget: nothing times out and every request still completes.
        assert_eq!(s.faults().timeouts, 0);
        assert_eq!(out.len(), 64, "all sequences still complete after the downsize");
        assert_eq!(s.kv_in_use(), 0);
        assert_eq!(s.kv_committed(), 0);
    }

    #[test]
    fn preemption_is_lifo_and_preserves_original_arrival() {
        // Force a shrink that strands committed KV above the downsized capacity.
        let mut s = scheduler(4);
        let capacity_one = s.kv_capacity() / 4;
        let prompt = capacity_one / 3;
        let output = 50;
        for i in 0..8 {
            s.offer(i, prompt, output, 0);
        }
        let mut out = Vec::new();
        // One iteration admits the whole burst (8 footprints fit 4 replicas).
        s.advance_to(1, &mut out);
        let running_before = s.running_len();
        assert!(running_before >= 4, "expected a loaded batch, got {running_before}");
        s.set_replicas(1);
        let faults = s.faults();
        assert!(faults.preemptions > 0, "the shrink must preempt");
        assert!(faults.evicted_tokens >= faults.preemptions * prompt as u64);
        assert_eq!(
            s.running_len() + s.queue_len() + out.len(),
            8 - faults.timeouts as usize,
            "no request vanishes"
        );
        s.advance_to(10_000_000, &mut out);
        assert_eq!(out.len() as u64 + s.faults().timeouts, 8);
        for done in &out {
            // Requeue never resets `arrival_ms`: every request arrived at 0, so a
            // reset to the (much later) preemption time would show up here, and TTFT
            // keeps measuring from the original arrival.
            assert_eq!(done.arrival_ms, 0);
            assert!(done.first_token_ms >= done.arrival_ms);
        }
        // LIFO: the earliest-admitted survivors were never evicted, so the requests
        // admitted first complete with the fewest attempts.
        assert_eq!(s.kv_in_use(), 0);
        assert_eq!(s.kv_committed(), 0);
    }

    #[test]
    fn exhausted_retry_budget_times_out_instead_of_looping() {
        let mut s = scheduler(2);
        s.set_fault_policy(0, 1, 100);
        let prompt = s.kv_capacity() / 3;
        for i in 0..2 {
            s.offer(i, prompt, 400, 0);
        }
        let mut out = Vec::new();
        s.advance_to(500, &mut out);
        assert_eq!(s.running_len(), 2);
        // Two shrinks in a row preempt the newer sequence twice; the second eviction
        // exceeds max_retries = 1 and drops it as a timeout.
        s.set_replicas(1);
        assert_eq!(s.faults().preemptions, 1);
        assert_eq!(s.faults().retries, 1);
        s.advance_to(s.now_ms() + 200, &mut out);
        s.set_replicas(2);
        s.advance_to(s.now_ms() + 2_000, &mut out);
        assert!(s.running_len() >= 1);
        s.set_replicas(1);
        let faults = s.faults();
        if faults.preemptions >= 2 {
            assert_eq!(faults.timeouts, 1, "second eviction exhausts the budget");
        }
        s.advance_to(10_000_000, &mut out);
        assert_eq!(
            out.len() as u64 + s.faults().timeouts,
            2,
            "every request either completes or is counted"
        );
    }

    #[test]
    fn deadline_shedding_counts_late_requests_instead_of_serving_them() {
        let mut s = scheduler(1);
        s.set_fault_policy(5_000, 3, 256);
        // Saturate the batch slots so later arrivals age out in the queue.
        for i in 0..300 {
            s.offer(i, 2_000, 300, 0);
        }
        let mut out = Vec::new();
        s.advance_to(3_600_000, &mut out);
        let faults = s.faults();
        assert!(faults.shed > 0, "the overload must shed late requests");
        assert_eq!(
            out.len() as u64 + faults.shed + faults.timeouts,
            300,
            "served + shed + timed out covers every offer"
        );
        assert!(!out.is_empty(), "early arrivals beat the deadline");
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.kv_in_use(), 0);
    }

    #[test]
    fn degradation_tightens_admission_under_pressure_and_relaxes_after() {
        let mut s = scheduler(1);
        // Disabled shedding: pressure never degrades (the legacy behaviour).
        for i in 0..10_000 {
            s.offer(i, 4_000, 400, 0);
        }
        s.note_pressure_window();
        assert_eq!(s.degrade_level(), 0);
        // Enabled: sustained pressure ratchets the level up to the floor, then a
        // clear queue lets it recover one notch per window.
        s.set_fault_policy(3_600_000, 3, 256);
        for _ in 0..6 {
            s.note_pressure_window();
        }
        assert_eq!(s.degrade_level(), 4, "level clamps at the 80 % floor");
        let mut drained = Vec::new();
        let mut window = 0u64;
        while s.queue_len() > 0 || s.running_len() > 0 {
            window += 1;
            assert!(window < 100_000, "drain stalled");
            s.advance_to(window * 60_000, &mut drained);
        }
        s.note_pressure_window();
        assert_eq!(s.degrade_level(), 3, "pressure cleared, one notch back");
    }

    #[test]
    fn fault_free_runs_leave_every_fault_counter_at_zero() {
        let mut s = scheduler(2);
        for i in 0..40 {
            s.offer(i, 256, 32, i * 50);
        }
        let mut out = Vec::new();
        s.advance_to(600_000, &mut out);
        assert_eq!(out.len(), 40);
        assert_eq!(s.faults(), SchedulerFaults::default());
    }

    #[test]
    fn past_deadlines_are_no_ops() {
        let mut s = scheduler(1);
        let mut out = Vec::new();
        s.advance_to(1_000, &mut out);
        s.advance_to(500, &mut out);
        assert_eq!(s.now_ms(), 1_000);
    }
}
