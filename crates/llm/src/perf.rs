//! Analytic roofline performance model for LLM inference.
//!
//! Inference has two phases (§3.3, [Splitwise/Sarathi-style phase split]):
//!
//! * **Prefill** processes the whole prompt in parallel and is compute-bound: its time is the
//!   prompt FLOPs divided by the effective tensor throughput of the GPUs the instance spans.
//! * **Decode** generates one token per sequence per iteration and is memory-bandwidth-bound:
//!   every iteration must stream the full weights (plus the KV cache of the running batch)
//!   from HBM, so batching amortizes the weight reads.
//!
//! The SLO definition follows the paper: TTFT and TBT must stay within 5× their value on an
//! unloaded system. *Goodput* is the token throughput achievable while meeting the SLO.

use crate::config::InstanceConfig;
use crate::hardware::GpuHardware;
use serde::{Deserialize, Serialize};

/// Default prompt length used for unloaded-latency calibration (tokens).
pub const CALIBRATION_PROMPT_TOKENS: usize = 512;
/// Default generation length used for calibration (tokens).
pub const CALIBRATION_OUTPUT_TOKENS: usize = 256;
/// SLO multiplier over the unloaded latency (§3.3: "defined as 5× the execution time on an
/// unloaded system").
pub const SLO_MULTIPLIER: f64 = 5.0;

/// The analytic performance model for one GPU generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    gpu: GpuHardware,
}

/// Latency targets derived from the unloaded latencies of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloTargets {
    /// Maximum acceptable time to first token, in seconds.
    pub ttft_s: f64,
    /// Maximum acceptable time between tokens, in seconds.
    pub tbt_s: f64,
}

impl PerfModel {
    /// Creates the model for a GPU generation.
    #[must_use]
    pub fn new(gpu: GpuHardware) -> Self {
        Self { gpu }
    }

    /// The GPU hardware this model describes.
    #[must_use]
    pub fn gpu(&self) -> &GpuHardware {
        &self.gpu
    }

    /// Aggregate effective compute of the instance in FLOP/s.
    fn instance_flops(&self, config: &InstanceConfig) -> f64 {
        self.gpu.effective_flops(config.frequency.value())
            * config.parallelism.gpus() as f64
            * config.parallelism.scaling_efficiency()
            * config.variant.quantization.compute_speedup()
    }

    /// Aggregate effective HBM bandwidth of the instance in byte/s.
    fn instance_bandwidth(&self, config: &InstanceConfig) -> f64 {
        self.gpu.effective_bandwidth(config.frequency.value())
            * config.parallelism.gpus() as f64
            * config.parallelism.scaling_efficiency()
    }

    /// Prefill time for a prompt of `prompt_tokens` tokens, in seconds.
    #[must_use]
    pub fn prefill_time_s(&self, config: &InstanceConfig, prompt_tokens: usize) -> f64 {
        let flops = 2.0 * config.variant.size.parameters() * prompt_tokens as f64;
        flops / self.instance_flops(config)
    }

    /// Time of one decode iteration for a batch of `batch_size` sequences whose mean context
    /// length is `mean_context_tokens`, in seconds.
    ///
    /// The iteration is the maximum of its memory time (weights + KV cache streamed once) and
    /// its compute time (one token of FLOPs per sequence).
    #[must_use]
    pub fn decode_step_time_s(
        &self,
        config: &InstanceConfig,
        batch_size: usize,
        mean_context_tokens: usize,
    ) -> f64 {
        let batch = batch_size.max(1) as f64;
        let weight_bytes = config.variant.size.parameters()
            * config.variant.quantization.bytes_per_param();
        let kv_bytes = batch * mean_context_tokens as f64 * config.variant.kv_bytes_per_token();
        let memory_time = (weight_bytes + kv_bytes) / self.instance_bandwidth(config);
        let compute_time =
            2.0 * config.variant.size.parameters() * batch / self.instance_flops(config);
        memory_time.max(compute_time)
    }

    /// Fraction of a decode iteration spent compute-bound (a proxy for GPU utilization and
    /// therefore power during decode). Larger batches raise it; it is clamped to `[0.12, 0.95]`
    /// because even a batch of one keeps the memory subsystem and schedulers busy.
    #[must_use]
    pub fn decode_compute_fraction(
        &self,
        config: &InstanceConfig,
        batch_size: usize,
        mean_context_tokens: usize,
    ) -> f64 {
        let step = self.decode_step_time_s(config, batch_size, mean_context_tokens);
        let compute = 2.0 * config.variant.size.parameters() * batch_size.max(1) as f64
            / self.instance_flops(config);
        (compute / step).clamp(0.12, 0.95)
    }

    /// Unloaded time-to-first-token: prefill of the calibration prompt with nothing else
    /// running, in seconds.
    #[must_use]
    pub fn ttft_unloaded_s(&self, config: &InstanceConfig) -> f64 {
        self.prefill_time_s(config, CALIBRATION_PROMPT_TOKENS)
    }

    /// Unloaded time-between-tokens: a batch-of-one decode iteration at the calibration
    /// context length, in seconds.
    #[must_use]
    pub fn tbt_unloaded_s(&self, config: &InstanceConfig) -> f64 {
        self.decode_step_time_s(
            config,
            1,
            CALIBRATION_PROMPT_TOKENS + CALIBRATION_OUTPUT_TOKENS / 2,
        )
    }

    /// SLO targets for a configuration (5× the unloaded latencies).
    #[must_use]
    pub fn slo_targets(&self, config: &InstanceConfig) -> SloTargets {
        SloTargets {
            ttft_s: SLO_MULTIPLIER * self.ttft_unloaded_s(config),
            tbt_s: SLO_MULTIPLIER * self.tbt_unloaded_s(config),
        }
    }

    /// The largest batch size (up to the configured maximum) whose decode iteration still
    /// meets the TBT SLO.
    #[must_use]
    pub fn slo_feasible_batch(&self, config: &InstanceConfig) -> usize {
        let targets = self.slo_targets(config);
        let context = CALIBRATION_PROMPT_TOKENS + CALIBRATION_OUTPUT_TOKENS / 2;
        let mut best = 1;
        for batch in 1..=config.max_batch_size.max(1) {
            if self.decode_step_time_s(config, batch, context) <= targets.tbt_s {
                best = batch;
            } else {
                break;
            }
        }
        best
    }

    /// Goodput: decode tokens per second at the largest SLO-feasible batch size.
    #[must_use]
    pub fn goodput_tokens_per_s(&self, config: &InstanceConfig) -> f64 {
        let batch = self.slo_feasible_batch(config);
        let context = CALIBRATION_PROMPT_TOKENS + CALIBRATION_OUTPUT_TOKENS / 2;
        let step = self.decode_step_time_s(config, batch, context);
        batch as f64 / step
    }

    /// End-to-end unloaded latency for a request of the given shape, in seconds.
    #[must_use]
    pub fn request_latency_unloaded_s(
        &self,
        config: &InstanceConfig,
        prompt_tokens: usize,
        output_tokens: usize,
    ) -> f64 {
        self.prefill_time_s(config, prompt_tokens)
            + output_tokens as f64
                * self.decode_step_time_s(config, 1, prompt_tokens + output_tokens / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FrequencyScale, TensorParallelism};
    use crate::model::{ModelSize, ModelVariant, Quantization};

    fn model() -> PerfModel {
        PerfModel::new(GpuHardware::a100())
    }

    fn config_70b() -> InstanceConfig {
        InstanceConfig::default_70b()
    }

    #[test]
    fn unloaded_latencies_are_in_a_plausible_range() {
        let m = model();
        let cfg = config_70b();
        let ttft = m.ttft_unloaded_s(&cfg);
        let tbt = m.tbt_unloaded_s(&cfg);
        // 70B on 8×A100: tens of milliseconds for a 512-token prefill, 10–40 ms per token.
        assert!((0.01..0.5).contains(&ttft), "ttft {ttft}");
        assert!((0.005..0.08).contains(&tbt), "tbt {tbt}");
    }

    #[test]
    fn smaller_models_are_faster() {
        let m = model();
        let big = config_70b();
        let mut small = big;
        small.variant = ModelVariant::new(ModelSize::Llama2_7B, Quantization::Fp16);
        assert!(m.ttft_unloaded_s(&small) < m.ttft_unloaded_s(&big));
        assert!(m.tbt_unloaded_s(&small) < m.tbt_unloaded_s(&big));
        assert!(m.goodput_tokens_per_s(&small) > m.goodput_tokens_per_s(&big));
    }

    #[test]
    fn quantization_speeds_up_decode() {
        let m = model();
        let fp16 = config_70b();
        let mut fp8 = fp16;
        fp8.variant = ModelVariant::new(ModelSize::Llama2_70B, Quantization::Fp8);
        assert!(m.tbt_unloaded_s(&fp8) < m.tbt_unloaded_s(&fp16));
        assert!(m.goodput_tokens_per_s(&fp8) > m.goodput_tokens_per_s(&fp16));
    }

    #[test]
    fn lower_parallelism_is_slower_per_instance() {
        let m = model();
        let tp8 = config_70b();
        let mut tp4 = tp8;
        tp4.parallelism = TensorParallelism::Tp4;
        assert!(m.prefill_time_s(&tp4, 512) > m.prefill_time_s(&tp8, 512));
        assert!(m.decode_step_time_s(&tp4, 16, 700) > m.decode_step_time_s(&tp8, 16, 700));
    }

    #[test]
    fn lower_frequency_hurts_prefill_more_than_decode() {
        let m = model();
        let nominal = config_70b();
        let mut slow = nominal;
        slow.frequency = FrequencyScale::new(0.55);
        let prefill_ratio = m.prefill_time_s(&slow, 512) / m.prefill_time_s(&nominal, 512);
        let decode_ratio =
            m.decode_step_time_s(&slow, 1, 700) / m.decode_step_time_s(&nominal, 1, 700);
        assert!(prefill_ratio > decode_ratio, "prefill should be more frequency sensitive");
        assert!(prefill_ratio > 1.5);
        assert!(decode_ratio < 1.3);
    }

    #[test]
    fn decode_time_grows_with_batch_and_context() {
        let m = model();
        let cfg = config_70b();
        let t1 = m.decode_step_time_s(&cfg, 1, 700);
        let t64 = m.decode_step_time_s(&cfg, 64, 700);
        let t64_long = m.decode_step_time_s(&cfg, 64, 4000);
        assert!(t64 > t1);
        assert!(t64_long > t64);
        // Batching amortizes the weight read: 64× the tokens in much less than 64× the time.
        assert!(t64 < 10.0 * t1);
    }

    #[test]
    fn decode_compute_fraction_increases_with_batch() {
        let m = model();
        let cfg = config_70b();
        let low = m.decode_compute_fraction(&cfg, 1, 700);
        let high = m.decode_compute_fraction(&cfg, 64, 700);
        assert!(high > low);
        assert!((0.12..=0.95).contains(&low));
        assert!((0.12..=0.95).contains(&high));
    }

    #[test]
    fn slo_targets_are_five_times_unloaded() {
        let m = model();
        let cfg = config_70b();
        let targets = m.slo_targets(&cfg);
        assert!((targets.ttft_s - 5.0 * m.ttft_unloaded_s(&cfg)).abs() < 1e-12);
        assert!((targets.tbt_s - 5.0 * m.tbt_unloaded_s(&cfg)).abs() < 1e-12);
    }

    #[test]
    fn slo_feasible_batch_respects_configured_maximum() {
        let m = model();
        let mut cfg = config_70b();
        cfg.max_batch_size = 16;
        assert!(m.slo_feasible_batch(&cfg) <= 16);
        cfg.max_batch_size = 1;
        assert_eq!(m.slo_feasible_batch(&cfg), 1);
    }

    #[test]
    fn goodput_is_positive_and_higher_on_h100() {
        let a100 = PerfModel::new(GpuHardware::a100());
        let h100 = PerfModel::new(GpuHardware::h100());
        let cfg = config_70b();
        assert!(a100.goodput_tokens_per_s(&cfg) > 0.0);
        assert!(h100.goodput_tokens_per_s(&cfg) > a100.goodput_tokens_per_s(&cfg));
    }

    #[test]
    fn request_latency_combines_both_phases() {
        let m = model();
        let cfg = config_70b();
        let latency = m.request_latency_unloaded_s(&cfg, 512, 128);
        let prefill = m.prefill_time_s(&cfg, 512);
        assert!(latency > prefill);
        assert!(latency > 128.0 * m.decode_step_time_s(&cfg, 1, 512));
    }
}
