//! Per-configuration steady-state profiles (Table 1 / Fig. 15 / Fig. 16 inputs).
//!
//! The offline profiling phase of TAPAS runs every configuration on the target hardware and
//! records, for both inference phases, the per-GPU utilization and power, the server power,
//! and the resulting goodput and quality. The profile is what the instance configurator and
//! the load balancer consult at run time; the datacenter engine uses the per-GPU power and
//! memory-boundedness to compute temperatures.

use crate::config::InstanceConfig;
use crate::hardware::GpuHardware;
use crate::perf::PerfModel;
use serde::{Deserialize, Serialize};
use simkit::units::{Kilowatts, Watts};

/// Host-side (non-GPU) power of a DGX-class server attributable to one instance occupying the
/// whole machine: fans, CPUs, NVMe, NICs. Split proportionally when an instance uses fewer
/// GPUs than the server has.
const HOST_OVERHEAD_KW: f64 = 1.6;

/// Steady-state behaviour of one configuration during one phase (prefill or decode).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Utilization of each GPU the instance occupies, in `[0, 1]`.
    pub gpu_utilization: f64,
    /// Power of each GPU the instance occupies.
    pub gpu_power: Watts,
    /// Power of the whole server slice the instance occupies (GPUs + proportional host
    /// overhead).
    pub server_power: Kilowatts,
    /// Memory-boundedness in `[0, 1]` (drives GPU-memory temperature in the thermal model).
    pub memory_boundedness: f64,
}

/// The full profile of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigProfile {
    /// The configuration this profile describes.
    pub config: InstanceConfig,
    /// Prefill-phase behaviour.
    pub prefill: PhaseProfile,
    /// Decode-phase behaviour.
    pub decode: PhaseProfile,
    /// Goodput (tokens/s within the TTFT/TBT SLO).
    pub goodput_tokens_per_s: f64,
    /// Result quality in `[0, 1]`.
    pub quality: f64,
    /// Unloaded TTFT in seconds.
    pub ttft_unloaded_s: f64,
    /// Unloaded TBT in seconds.
    pub tbt_unloaded_s: f64,
}

/// GPU power at a given utilization and frequency: a static floor plus a dynamic part that
/// scales with utilization and the cube of the frequency (DVFS).
fn gpu_power(gpu: &GpuHardware, utilization: f64, frequency_scale: f64) -> Watts {
    let u = utilization.clamp(0.0, 1.0);
    let f = frequency_scale.clamp(0.1, 1.0);
    Watts::new(0.15 * gpu.max_power_w + 0.85 * gpu.max_power_w * u * f.powi(3))
}

impl ConfigProfile {
    /// Builds the profile for one configuration on one GPU generation, using the analytic
    /// performance model.
    #[must_use]
    pub fn build(config: &InstanceConfig, gpu: &GpuHardware) -> Self {
        let perf = PerfModel::new(*gpu);
        let freq = config.frequency.value();
        let gpus = config.parallelism.gpus() as f64;

        // Prefill: compute-bound, all occupied GPUs near full utilization (scaled by the
        // parallelism efficiency — communication stalls show up as lower utilization).
        let prefill_util = 0.95 * config.parallelism.scaling_efficiency();
        let prefill_gpu_power = gpu_power(gpu, prefill_util, freq);
        let prefill = PhaseProfile {
            gpu_utilization: prefill_util,
            gpu_power: prefill_gpu_power,
            server_power: Kilowatts::new(
                prefill_gpu_power.value() * gpus / 1000.0
                    + HOST_OVERHEAD_KW * gpus / gpu.gpus_per_server as f64,
            ),
            memory_boundedness: 0.15,
        };

        // Decode: memory-bound; utilization (and therefore power) grows with the batch size.
        let context = crate::perf::CALIBRATION_PROMPT_TOKENS
            + crate::perf::CALIBRATION_OUTPUT_TOKENS / 2;
        let batch = perf.slo_feasible_batch(config);
        let decode_util = perf.decode_compute_fraction(config, batch, context)
            * config.parallelism.scaling_efficiency()
            + 0.15;
        let decode_util = decode_util.clamp(0.0, 0.95);
        let decode_gpu_power = gpu_power(gpu, decode_util, freq);
        // Smaller batches fetch data in smaller, less efficient bursts, which drives the
        // memory controller (and memory temperature) harder relative to useful work (§3.3).
        let memory_boundedness =
            (0.95 - 0.25 * (config.max_batch_size as f64 / 64.0).min(1.0)).clamp(0.0, 1.0);
        let decode = PhaseProfile {
            gpu_utilization: decode_util,
            gpu_power: decode_gpu_power,
            server_power: Kilowatts::new(
                decode_gpu_power.value() * gpus / 1000.0
                    + HOST_OVERHEAD_KW * gpus / gpu.gpus_per_server as f64,
            ),
            memory_boundedness,
        };

        Self {
            config: *config,
            prefill,
            decode,
            goodput_tokens_per_s: perf.goodput_tokens_per_s(config),
            quality: config.quality(),
            ttft_unloaded_s: perf.ttft_unloaded_s(config),
            tbt_unloaded_s: perf.tbt_unloaded_s(config),
        }
    }

    /// Builds profiles for every configuration in the profiling sweep that fits in GPU memory.
    #[must_use]
    pub fn sweep(gpu: &GpuHardware) -> Vec<ConfigProfile> {
        InstanceConfig::enumerate()
            .into_iter()
            .filter(|c| c.fits_in_memory(gpu.memory_capacity_gb))
            .map(|c| ConfigProfile::build(&c, gpu))
            .collect()
    }

    /// Steady-state server power of a mixed prefill/decode workload where `decode_fraction`
    /// of the time is spent decoding.
    #[must_use]
    pub fn blended_server_power(&self, decode_fraction: f64) -> Kilowatts {
        let d = decode_fraction.clamp(0.0, 1.0);
        self.prefill.server_power * (1.0 - d) + self.decode.server_power * d
    }

    /// Steady-state per-GPU power under the same blend.
    #[must_use]
    pub fn blended_gpu_power(&self, decode_fraction: f64) -> Watts {
        let d = decode_fraction.clamp(0.0, 1.0);
        self.prefill.gpu_power * (1.0 - d) + self.decode.gpu_power * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FrequencyScale, TensorParallelism};
    use crate::model::{ModelSize, ModelVariant, Quantization};

    fn a100() -> GpuHardware {
        GpuHardware::a100()
    }

    #[test]
    fn prefill_draws_more_gpu_power_than_decode() {
        // Fig. 15: the prompt (prefill) phase is the power-hungry one.
        let profile = ConfigProfile::build(&InstanceConfig::default_70b(), &a100());
        assert!(profile.prefill.gpu_power.value() > profile.decode.gpu_power.value());
        assert!(profile.prefill.server_power.value() > profile.decode.server_power.value());
        assert!(profile.prefill.memory_boundedness < profile.decode.memory_boundedness);
    }

    #[test]
    fn lower_parallelism_lowers_server_power_but_raises_per_gpu_power() {
        // Fig. 15a: TP2 concentrates the same work in fewer GPUs.
        let tp8 = ConfigProfile::build(&InstanceConfig::default_70b(), &a100());
        let mut cfg = InstanceConfig::default_70b();
        cfg.variant = ModelVariant::new(ModelSize::Llama2_13B, Quantization::Fp16);
        cfg.parallelism = TensorParallelism::Tp8;
        let tp8_13b = ConfigProfile::build(&cfg, &a100());
        cfg.parallelism = TensorParallelism::Tp2;
        let tp2_13b = ConfigProfile::build(&cfg, &a100());
        // Server power: fewer GPUs active -> lower.
        assert!(tp2_13b.decode.server_power.value() < tp8_13b.decode.server_power.value());
        assert!(tp2_13b.prefill.server_power.value() < tp8_13b.prefill.server_power.value());
        // Per-GPU (hottest GPU) power: the concentrated work runs each GPU harder during
        // decode, where batching keeps the fewer GPUs busier.
        assert!(tp2_13b.decode.gpu_power.value() >= tp8_13b.decode.gpu_power.value());
        let _ = tp8;
    }

    #[test]
    fn smaller_batches_reduce_power_but_raise_memory_boundedness() {
        // Fig. 15b: batch 64 vs 16 vs 1.
        let mut cfg = InstanceConfig::default_70b();
        cfg.max_batch_size = 64;
        let b64 = ConfigProfile::build(&cfg, &a100());
        cfg.max_batch_size = 16;
        let b16 = ConfigProfile::build(&cfg, &a100());
        cfg.max_batch_size = 1;
        let b1 = ConfigProfile::build(&cfg, &a100());
        assert!(b64.decode.gpu_power.value() >= b16.decode.gpu_power.value());
        assert!(b16.decode.gpu_power.value() >= b1.decode.gpu_power.value());
        assert!(b1.decode.memory_boundedness > b64.decode.memory_boundedness);
        assert!(b64.goodput_tokens_per_s > b1.goodput_tokens_per_s);
    }

    #[test]
    fn smaller_models_reduce_power_and_quality() {
        // Fig. 15c / Table 1.
        let big = ConfigProfile::build(&InstanceConfig::default_70b(), &a100());
        let mut cfg = InstanceConfig::default_70b();
        cfg.variant = ModelVariant::new(ModelSize::Llama2_7B, Quantization::Fp16);
        let small = ConfigProfile::build(&cfg, &a100());
        assert!(small.decode.server_power.value() < big.decode.server_power.value());
        assert!(small.goodput_tokens_per_s > big.goodput_tokens_per_s);
        assert!(small.quality < big.quality);
    }

    #[test]
    fn lower_frequency_reduces_power_without_quality_impact() {
        let nominal = ConfigProfile::build(&InstanceConfig::default_70b(), &a100());
        let mut cfg = InstanceConfig::default_70b();
        cfg.frequency = FrequencyScale::new(0.55);
        let slow = ConfigProfile::build(&cfg, &a100());
        assert!(slow.prefill.gpu_power.value() < nominal.prefill.gpu_power.value());
        assert!(slow.decode.gpu_power.value() < nominal.decode.gpu_power.value());
        assert!(slow.goodput_tokens_per_s < nominal.goodput_tokens_per_s);
        assert_eq!(slow.quality, nominal.quality);
    }

    #[test]
    fn quantization_reduces_power_with_small_quality_cost() {
        let fp16 = ConfigProfile::build(&InstanceConfig::default_70b(), &a100());
        let mut cfg = InstanceConfig::default_70b();
        cfg.variant = ModelVariant::new(ModelSize::Llama2_70B, Quantization::Fp8);
        let fp8 = ConfigProfile::build(&cfg, &a100());
        assert!(fp8.goodput_tokens_per_s > fp16.goodput_tokens_per_s);
        assert!(fp8.quality < fp16.quality);
        assert!(fp8.quality > 0.9);
    }

    #[test]
    fn sweep_excludes_configs_that_do_not_fit() {
        let profiles = ConfigProfile::sweep(&a100());
        let all = InstanceConfig::enumerate().len();
        assert!(profiles.len() < all, "the 70B FP16 TP2 configs must be filtered out");
        assert!(profiles.len() > all / 2);
        for p in &profiles {
            assert!(p.config.fits_in_memory(80.0));
            assert!(p.goodput_tokens_per_s > 0.0);
            assert!(p.prefill.server_power.value() > 0.0);
        }
    }

    #[test]
    fn blended_power_interpolates_between_phases() {
        let p = ConfigProfile::build(&InstanceConfig::default_70b(), &a100());
        assert_eq!(p.blended_server_power(0.0), p.prefill.server_power);
        assert_eq!(p.blended_server_power(1.0), p.decode.server_power);
        let mid = p.blended_server_power(0.5).value();
        assert!(mid < p.prefill.server_power.value());
        assert!(mid > p.decode.server_power.value());
        assert_eq!(p.blended_gpu_power(1.0), p.decode.gpu_power);
    }

    #[test]
    fn server_power_is_below_dgx_tdp() {
        for profile in ConfigProfile::sweep(&a100()) {
            assert!(
                profile.prefill.server_power.value() <= 6.5 + 1e-9,
                "prefill power {} exceeds DGX A100 TDP for {}",
                profile.prefill.server_power,
                profile.config
            );
        }
    }
}
