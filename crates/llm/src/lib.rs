//! # llm-sim — LLM inference substrate for the TAPAS reproduction
//!
//! TAPAS exploits the fact that an LLM inference server exposes several configuration knobs —
//! GPU frequency, batch size, tensor parallelism, model size and quantization — each trading
//! off performance against temperature, power and result quality (Table 1 of the paper), and
//! that inference has two phases (compute-bound *prefill* and memory-bound *decode*) with very
//! different thermal and power behaviour (Fig. 15).
//!
//! This crate provides:
//!
//! * [`model`] — the model catalog (Llama-2 7B/13B/70B), quantization formats and the quality
//!   model (smaller / more quantized models answer faster and cooler but less accurately).
//! * [`hardware`] — the GPU hardware description (A100/H100 compute, bandwidth, memory).
//! * [`config`] — the instance configuration space and reconfiguration costs.
//! * [`perf`] — an analytic roofline-style performance model for prefill and decode:
//!   time-to-first-token (TTFT), time-between-tokens (TBT), throughput and goodput under the
//!   paper's SLO (5× the unloaded latency).
//! * [`profile`] — per-configuration steady-state profiles (per-GPU power, server power,
//!   utilization, memory-boundedness for both phases) used by the datacenter model and by the
//!   TAPAS instance configurator, reproducing the orderings of Fig. 15.
//! * [`pareto`] — the temperature/power vs goodput Pareto frontier of Fig. 16.
//! * [`request`] — inference request descriptions and generators.
//! * [`engine`] — an iteration-level continuous-batching engine simulator (vLLM-like) that
//!   serves requests and records TTFT/TBT/goodput, used to validate the analytic model and to
//!   drive the real-cluster-scale experiments.
//! * [`batch`] — the request fabric's aggregate batch scheduler: continuous batching on an
//!   integer-millisecond event clock with *incremental* KV-cache admission accounting
//!   (prompt pinned at admission, +1 token per sequence per decode iteration, eviction on
//!   completion).
//!
//! # Example
//!
//! ```
//! use llm_sim::config::InstanceConfig;
//! use llm_sim::hardware::GpuHardware;
//! use llm_sim::profile::ConfigProfile;
//!
//! let config = InstanceConfig::default_70b();
//! let profile = ConfigProfile::build(&config, &GpuHardware::a100());
//! assert!(profile.decode.server_power.value() > 0.0);
//! assert!(profile.quality > 0.9, "the 70B FP16 model is the quality reference");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod config;
pub mod engine;
pub mod hardware;
pub mod model;
pub mod pareto;
pub mod perf;
pub mod profile;
pub mod request;

pub use batch::{BatchCompletion, BatchScheduler};
pub use config::{InstanceConfig, TensorParallelism};
pub use hardware::GpuHardware;
pub use model::{ModelSize, Quantization};
pub use pareto::ParetoFrontier;
pub use perf::PerfModel;
pub use profile::{ConfigProfile, PhaseProfile};
pub use request::InferenceRequest;
