//! Inference requests and request generators.
//!
//! A request is a prompt of some length that generates some number of output tokens, sent by
//! a customer (the customer identity matters for KV-cache-affinity routing, §4.5). The
//! generator draws prompt/output lengths from log-normal distributions, matching the
//! heavy-tailed shapes reported for production conversational traces.

use serde::{Deserialize, Serialize};
use simkit::rng::SimRng;
use simkit::time::SimTime;

/// A unique request identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RequestId(pub u64);

/// A customer identifier (used for KV-cache affinity routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CustomerId(pub u64);

/// One LLM inference request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// Unique id.
    pub id: RequestId,
    /// The customer issuing the request.
    pub customer: CustomerId,
    /// Arrival time.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Number of output tokens to generate.
    pub output_tokens: usize,
}

impl InferenceRequest {
    /// Total tokens processed for this request (prompt + generated).
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.prompt_tokens + self.output_tokens
    }
}

/// Parameters of the request-shape distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestShape {
    /// Median prompt length in tokens.
    pub median_prompt_tokens: f64,
    /// Log-normal sigma of the prompt length.
    pub prompt_sigma: f64,
    /// Median output length in tokens.
    pub median_output_tokens: f64,
    /// Log-normal sigma of the output length.
    pub output_sigma: f64,
    /// Maximum total sequence length (longer draws are truncated).
    pub max_total_tokens: usize,
}

impl Default for RequestShape {
    fn default() -> Self {
        Self {
            median_prompt_tokens: 512.0,
            prompt_sigma: 0.9,
            median_output_tokens: 200.0,
            output_sigma: 0.8,
            max_total_tokens: 8192,
        }
    }
}

/// Generates requests with log-normally distributed shapes from a pool of customers.
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    shape: RequestShape,
    customers: u64,
    next_id: u64,
    rng: SimRng,
}

impl RequestGenerator {
    /// Creates a generator with `customers` distinct customers and a deterministic seed.
    ///
    /// # Panics
    /// Panics if `customers` is zero.
    #[must_use]
    pub fn new(shape: RequestShape, customers: u64, seed: u64) -> Self {
        assert!(customers > 0, "need at least one customer");
        Self {
            shape,
            customers,
            next_id: 0,
            rng: SimRng::seed_from(seed).derive("requests"),
        }
    }

    /// Generates one request arriving at `time`.
    pub fn generate(&mut self, time: SimTime) -> InferenceRequest {
        let prompt = self
            .rng
            .log_normal(self.shape.median_prompt_tokens.ln(), self.shape.prompt_sigma)
            .round()
            .max(1.0) as usize;
        let output = self
            .rng
            .log_normal(self.shape.median_output_tokens.ln(), self.shape.output_sigma)
            .round()
            .max(1.0) as usize;
        let (prompt, output) = clamp_total(prompt, output, self.shape.max_total_tokens);
        let customer = CustomerId(self.rng.next_u64() % self.customers);
        let id = RequestId(self.next_id);
        self.next_id += 1;
        InferenceRequest { id, customer, arrival: time, prompt_tokens: prompt, output_tokens: output }
    }

    /// Generates a Poisson batch of requests for one step of `step_minutes` minutes at an
    /// average rate of `requests_per_minute`.
    pub fn generate_step(
        &mut self,
        time: SimTime,
        requests_per_minute: f64,
        step_minutes: u64,
    ) -> Vec<InferenceRequest> {
        let mean = (requests_per_minute * step_minutes as f64).max(0.0);
        let count = self.rng.poisson(mean);
        (0..count).map(|_| self.generate(time)).collect()
    }
}

/// Scales `(prompt, output)` down proportionally if their sum exceeds `max_total`.
fn clamp_total(prompt: usize, output: usize, max_total: usize) -> (usize, usize) {
    let total = prompt + output;
    if total <= max_total || total == 0 {
        return (prompt, output);
    }
    let scale = max_total as f64 / total as f64;
    let prompt = ((prompt as f64 * scale).floor() as usize).max(1);
    let output = (max_total - prompt).max(1);
    (prompt, output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::stats;

    #[test]
    fn generated_requests_have_positive_lengths_and_unique_ids() {
        let mut generator = RequestGenerator::new(RequestShape::default(), 100, 1);
        let mut ids = std::collections::BTreeSet::new();
        for i in 0..1000 {
            let r = generator.generate(SimTime::from_minutes(i));
            assert!(r.prompt_tokens >= 1);
            assert!(r.output_tokens >= 1);
            assert!(r.total_tokens() <= RequestShape::default().max_total_tokens);
            assert!(r.customer.0 < 100);
            assert!(ids.insert(r.id), "request ids must be unique");
        }
    }

    #[test]
    fn median_prompt_length_matches_shape() {
        let mut generator = RequestGenerator::new(RequestShape::default(), 10, 2);
        let prompts: Vec<f64> = (0..5000)
            .map(|_| generator.generate(SimTime::ZERO).prompt_tokens as f64)
            .collect();
        let median = stats::percentile(&prompts, 50.0).unwrap();
        assert!((median - 512.0).abs() < 80.0, "median {median}");
        // The distribution is heavy-tailed: p99 well above the median.
        let p99 = stats::percentile(&prompts, 99.0).unwrap();
        assert!(p99 > 2.0 * median);
    }

    #[test]
    fn poisson_step_generation_matches_rate() {
        let mut generator = RequestGenerator::new(RequestShape::default(), 10, 3);
        let counts: Vec<f64> = (0..500)
            .map(|i| {
                generator
                    .generate_step(SimTime::from_minutes(i * 5), 12.0, 5)
                    .len() as f64
            })
            .collect();
        let mean = stats::mean(&counts).unwrap();
        assert!((mean - 60.0).abs() < 3.0, "mean {mean}");
        // Zero rate produces zero requests.
        assert!(generator.generate_step(SimTime::ZERO, 0.0, 5).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = RequestGenerator::new(RequestShape::default(), 10, 7);
        let mut b = RequestGenerator::new(RequestShape::default(), 10, 7);
        for i in 0..50 {
            assert_eq!(a.generate(SimTime::from_minutes(i)), b.generate(SimTime::from_minutes(i)));
        }
    }

    #[test]
    fn clamp_total_preserves_budget() {
        assert_eq!(clamp_total(100, 100, 300), (100, 100));
        let (p, o) = clamp_total(6000, 6000, 8192);
        assert!(p + o <= 8192);
        assert!(p >= 1 && o >= 1);
        let (p, o) = clamp_total(10_000, 1, 4096);
        assert!(p + o <= 4096);
    }

    #[test]
    #[should_panic(expected = "at least one customer")]
    fn zero_customers_panics() {
        let _ = RequestGenerator::new(RequestShape::default(), 0, 1);
    }
}
