//! GPU hardware description used by the analytic performance model.
//!
//! Only the quantities the roofline model needs are captured: peak dense FP16 compute, HBM
//! bandwidth, HBM capacity and the board power limit. The numbers correspond to the SXM
//! variants shipped in DGX A100 / DGX H100 systems, the servers the paper characterizes.

/// One GPU's capability envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuHardware {
    /// Marketing name.
    pub name: &'static str,
    /// Peak dense FP16 tensor throughput in TFLOP/s at nominal clocks.
    pub peak_fp16_tflops: f64,
    /// HBM bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// HBM capacity in GB.
    pub memory_capacity_gb: f64,
    /// Board power limit in watts.
    pub max_power_w: f64,
    /// Fraction of peak compute achievable in practice for transformer kernels (model FLOPs
    /// utilization during prefill).
    pub compute_efficiency: f64,
    /// Fraction of peak bandwidth achievable in practice during decode.
    pub bandwidth_efficiency: f64,
    /// Number of GPUs in the host server.
    pub gpus_per_server: usize,
}

impl GpuHardware {
    /// NVIDIA A100 SXM 80 GB.
    #[must_use]
    pub fn a100() -> Self {
        Self {
            name: "A100-SXM-80GB",
            peak_fp16_tflops: 312.0,
            memory_bandwidth_gbps: 2039.0,
            memory_capacity_gb: 80.0,
            max_power_w: 400.0,
            compute_efficiency: 0.45,
            bandwidth_efficiency: 0.65,
            gpus_per_server: 8,
        }
    }

    /// NVIDIA H100 SXM 80 GB.
    #[must_use]
    pub fn h100() -> Self {
        Self {
            name: "H100-SXM-80GB",
            peak_fp16_tflops: 989.0,
            memory_bandwidth_gbps: 3350.0,
            memory_capacity_gb: 80.0,
            max_power_w: 700.0,
            compute_efficiency: 0.40,
            bandwidth_efficiency: 0.65,
            gpus_per_server: 8,
        }
    }

    /// Effective compute throughput in FLOP/s at a frequency scale in `(0, 1]`.
    #[must_use]
    pub fn effective_flops(&self, frequency_scale: f64) -> f64 {
        self.peak_fp16_tflops * 1.0e12 * self.compute_efficiency * frequency_scale.clamp(0.1, 1.0)
    }

    /// Effective memory bandwidth in byte/s at a frequency scale.
    ///
    /// HBM bandwidth is only mildly sensitive to core clocks; we model a 30 % dependence,
    /// which is why decode (memory-bound) is less frequency-sensitive than prefill — the
    /// behaviour §3.3 reports.
    #[must_use]
    pub fn effective_bandwidth(&self, frequency_scale: f64) -> f64 {
        let f = frequency_scale.clamp(0.1, 1.0);
        self.memory_bandwidth_gbps * 1.0e9 * self.bandwidth_efficiency * (0.7 + 0.3 * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_values_are_sane() {
        let a100 = GpuHardware::a100();
        let h100 = GpuHardware::h100();
        assert!(h100.peak_fp16_tflops > a100.peak_fp16_tflops);
        assert!(h100.memory_bandwidth_gbps > a100.memory_bandwidth_gbps);
        assert_eq!(a100.gpus_per_server, 8);
        assert_eq!(a100.memory_capacity_gb, 80.0);
        assert_eq!(a100.max_power_w, 400.0);
        assert_eq!(h100.max_power_w, 700.0);
    }

    #[test]
    fn frequency_scaling_hits_compute_harder_than_bandwidth() {
        let gpu = GpuHardware::a100();
        let compute_ratio = gpu.effective_flops(0.5) / gpu.effective_flops(1.0);
        let bandwidth_ratio = gpu.effective_bandwidth(0.5) / gpu.effective_bandwidth(1.0);
        assert!((compute_ratio - 0.5).abs() < 1e-9);
        assert!(bandwidth_ratio > 0.8, "bandwidth should be less frequency sensitive");
    }

    #[test]
    fn frequency_scale_is_clamped() {
        let gpu = GpuHardware::a100();
        assert_eq!(gpu.effective_flops(0.0), gpu.effective_flops(0.1));
        assert_eq!(gpu.effective_flops(2.0), gpu.effective_flops(1.0));
    }
}
