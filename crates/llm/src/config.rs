//! The instance configuration space.
//!
//! Table 1 of the paper lists the knobs an LLM inference server exposes and their impact:
//!
//! | knob | perf | temp | power | quality |
//! |------|------|------|-------|---------|
//! | model size 70B→7B | ↑ | ↓ | ↓ | ↓↓ |
//! | quantization FP16→FP8 | ↑ | ↓ | ↓ | ↓ |
//! | parallelism TP8→TP2 | ↓ | ↑ (hottest GPU) | ↓ (server) | − |
//! | frequency 2 GHz→1 GHz | ↓ | ↓ | ↓ | − |
//! | batch size 64→16 | ↓ | ↓ | ↓ | − |
//!
//! [`InstanceConfig`] is one point in that space; [`InstanceConfig::enumerate`] produces the
//! configurations the offline profiling phase sweeps, and [`ReconfigurationCost`] captures how
//! disruptive it is to move between two configurations (frequency changes are instantaneous,
//! model changes require a reload, §4.3).

use crate::model::{ModelSize, ModelVariant, Quantization};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tensor-parallel degree of an instance (the paper considers powers of two compatible with
/// the Llama-2 KV-head counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TensorParallelism {
    /// Two GPUs per instance.
    Tp2,
    /// Four GPUs per instance.
    Tp4,
    /// Eight GPUs per instance (whole DGX server).
    Tp8,
}

impl TensorParallelism {
    /// All supported degrees, smallest first.
    pub const ALL: [TensorParallelism; 3] =
        [TensorParallelism::Tp2, TensorParallelism::Tp4, TensorParallelism::Tp8];

    /// Number of GPUs the instance occupies.
    #[must_use]
    pub fn gpus(self) -> usize {
        match self {
            TensorParallelism::Tp2 => 2,
            TensorParallelism::Tp4 => 4,
            TensorParallelism::Tp8 => 8,
        }
    }

    /// Communication efficiency: the fraction of ideal linear scaling actually achieved
    /// (all-reduce overheads grow with the degree).
    #[must_use]
    pub fn scaling_efficiency(self) -> f64 {
        match self {
            TensorParallelism::Tp2 => 0.95,
            TensorParallelism::Tp4 => 0.88,
            TensorParallelism::Tp8 => 0.80,
        }
    }
}

impl fmt::Display for TensorParallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TP{}", self.gpus())
    }
}

/// GPU clock setting expressed as a fraction of nominal frequency.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct FrequencyScale(f64);

impl FrequencyScale {
    /// Nominal clocks.
    pub const NOMINAL: Self = Self(1.0);

    /// The discrete frequency steps the configurator considers (≈2.0 GHz down to ≈1.0 GHz on
    /// an A100, expressed as fractions of nominal).
    pub const STEPS: [f64; 4] = [1.0, 0.85, 0.7, 0.55];

    /// Creates a frequency scale, clamping into `[0.1, 1.0]`.
    #[must_use]
    pub fn new(scale: f64) -> Self {
        Self(scale.clamp(0.1, 1.0))
    }

    /// The raw fraction.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for FrequencyScale {
    fn default() -> Self {
        Self::NOMINAL
    }
}

impl fmt::Display for FrequencyScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}%", self.0 * 100.0)
    }
}

/// A full instance configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceConfig {
    /// Model size and precision.
    pub variant: ModelVariant,
    /// Tensor-parallel degree.
    pub parallelism: TensorParallelism,
    /// Maximum continuous-batching batch size.
    pub max_batch_size: usize,
    /// GPU clock setting.
    pub frequency: FrequencyScale,
}

impl InstanceConfig {
    /// The paper's default SaaS configuration: Llama-2 70B, FP16, TP8, batch 64, nominal
    /// clocks.
    #[must_use]
    pub fn default_70b() -> Self {
        Self {
            variant: ModelVariant::new(ModelSize::Llama2_70B, Quantization::Fp16),
            parallelism: TensorParallelism::Tp8,
            max_batch_size: 64,
            frequency: FrequencyScale::NOMINAL,
        }
    }

    /// A small, cool fallback configuration (7B, FP8, TP2, batch 16).
    #[must_use]
    pub fn small_fallback() -> Self {
        Self {
            variant: ModelVariant::new(ModelSize::Llama2_7B, Quantization::Fp8),
            parallelism: TensorParallelism::Tp2,
            max_batch_size: 16,
            frequency: FrequencyScale::NOMINAL,
        }
    }

    /// The batch sizes the offline profiling sweep considers (§3.3 uses 1, 16, 64).
    pub const BATCH_SIZES: [usize; 3] = [1, 16, 64];

    /// Enumerates the full configuration space the offline profiling phase sweeps:
    /// 3 sizes × 3 quantizations × 3 parallelism degrees × 3 batch sizes × 4 frequencies.
    #[must_use]
    pub fn enumerate() -> Vec<InstanceConfig> {
        let mut configs = Vec::new();
        for size in ModelSize::ALL {
            for quant in Quantization::ALL {
                for tp in TensorParallelism::ALL {
                    for &batch in &Self::BATCH_SIZES {
                        for &freq in &FrequencyScale::STEPS {
                            configs.push(InstanceConfig {
                                variant: ModelVariant::new(size, quant),
                                parallelism: tp,
                                max_batch_size: batch,
                                frequency: FrequencyScale::new(freq),
                            });
                        }
                    }
                }
            }
        }
        configs
    }

    /// Result quality of this configuration in `[0, 1]`.
    #[must_use]
    pub fn quality(&self) -> f64 {
        self.variant.quality()
    }

    /// Returns `true` if the model weights (plus a working margin) fit in the aggregate HBM of
    /// the GPUs the instance occupies.
    #[must_use]
    pub fn fits_in_memory(&self, gpu_memory_gb: f64) -> bool {
        let total_memory = gpu_memory_gb * self.parallelism.gpus() as f64;
        // Reserve 25 % of HBM for KV cache and activations.
        self.variant.weight_bytes_gb() <= total_memory * 0.75
    }

    /// Cost of switching from `self` to `to`.
    #[must_use]
    pub fn reconfiguration_cost(&self, to: &InstanceConfig) -> ReconfigurationCost {
        if self == to {
            ReconfigurationCost::None
        } else if self.variant == to.variant && self.parallelism == to.parallelism {
            // Frequency and batch-size changes apply immediately (§3.3: frequency "can be
            // applied instantaneously due to its relatively low overhead").
            ReconfigurationCost::Online
        } else {
            // Changing the model size, quantization or parallelism requires reloading the
            // model, which takes a few seconds to tens of seconds (§4.3).
            let gb_to_load = to.variant.weight_bytes_gb();
            // Assume ≈4 GB/s effective load bandwidth from local NVMe into HBM.
            let seconds = (gb_to_load / 4.0).max(2.0);
            ReconfigurationCost::Reload { seconds }
        }
    }
}

impl Default for InstanceConfig {
    fn default() -> Self {
        Self::default_70b()
    }
}

impl fmt::Display for InstanceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} batch={} freq={}",
            self.variant, self.parallelism, self.max_batch_size, self.frequency
        )
    }
}

/// How disruptive a configuration change is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReconfigurationCost {
    /// No change at all.
    None,
    /// Applied online without restarting the instance (frequency, batch size).
    Online,
    /// Requires reloading the model; the instance is unavailable for `seconds`.
    Reload {
        /// Downtime in seconds.
        seconds: f64,
    },
}

impl ReconfigurationCost {
    /// Downtime in seconds (zero for [`Self::None`] and [`Self::Online`]).
    #[must_use]
    pub fn downtime_seconds(&self) -> f64 {
        match self {
            ReconfigurationCost::None | ReconfigurationCost::Online => 0.0,
            ReconfigurationCost::Reload { seconds } => *seconds,
        }
    }

    /// Returns `true` if the change requires a model reload.
    #[must_use]
    pub fn requires_reload(&self) -> bool {
        matches!(self, ReconfigurationCost::Reload { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_gpu_counts() {
        assert_eq!(TensorParallelism::Tp2.gpus(), 2);
        assert_eq!(TensorParallelism::Tp8.gpus(), 8);
        assert_eq!(TensorParallelism::Tp8.to_string(), "TP8");
        assert!(TensorParallelism::Tp2.scaling_efficiency() > TensorParallelism::Tp8.scaling_efficiency());
    }

    #[test]
    fn frequency_scale_clamps_and_displays() {
        assert_eq!(FrequencyScale::new(1.5).value(), 1.0);
        assert_eq!(FrequencyScale::new(0.0).value(), 0.1);
        assert_eq!(FrequencyScale::new(0.7).to_string(), "70%");
        assert_eq!(FrequencyScale::default(), FrequencyScale::NOMINAL);
    }

    #[test]
    fn enumerate_covers_the_profiling_sweep() {
        let configs = InstanceConfig::enumerate();
        assert_eq!(configs.len(), 3 * 3 * 3 * 3 * 4);
        // All entries are distinct.
        for (i, a) in configs.iter().enumerate() {
            for b in &configs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn memory_fit_depends_on_parallelism_and_quantization() {
        let mut cfg = InstanceConfig::default_70b();
        // 70B FP16 = 140 GB of weights: does not fit in 2×80 GB with margin, fits in 4×80 GB.
        cfg.parallelism = TensorParallelism::Tp2;
        assert!(!cfg.fits_in_memory(80.0));
        cfg.parallelism = TensorParallelism::Tp4;
        assert!(cfg.fits_in_memory(80.0));
        // INT4 quantization shrinks it enough for TP2.
        cfg.parallelism = TensorParallelism::Tp2;
        cfg.variant = ModelVariant::new(ModelSize::Llama2_70B, Quantization::Int4);
        assert!(cfg.fits_in_memory(80.0));
        // The 7B model fits everywhere.
        let small = InstanceConfig::small_fallback();
        assert!(small.fits_in_memory(80.0));
    }

    #[test]
    fn reconfiguration_costs_follow_the_paper() {
        let base = InstanceConfig::default_70b();
        assert_eq!(base.reconfiguration_cost(&base), ReconfigurationCost::None);

        let mut freq_change = base;
        freq_change.frequency = FrequencyScale::new(0.7);
        assert_eq!(base.reconfiguration_cost(&freq_change), ReconfigurationCost::Online);
        assert_eq!(base.reconfiguration_cost(&freq_change).downtime_seconds(), 0.0);

        let mut batch_change = base;
        batch_change.max_batch_size = 16;
        assert_eq!(base.reconfiguration_cost(&batch_change), ReconfigurationCost::Online);

        let small = InstanceConfig::small_fallback();
        let cost = base.reconfiguration_cost(&small);
        assert!(cost.requires_reload());
        assert!(cost.downtime_seconds() >= 2.0);
        // Loading the bigger model takes longer than loading the smaller one.
        let back = small.reconfiguration_cost(&base);
        assert!(back.downtime_seconds() > cost.downtime_seconds());
    }

    #[test]
    fn display_is_informative() {
        let cfg = InstanceConfig::default_70b();
        let s = cfg.to_string();
        assert!(s.contains("llama2-70b"));
        assert!(s.contains("TP8"));
        assert!(s.contains("batch=64"));
    }

    #[test]
    fn quality_delegates_to_variant() {
        assert_eq!(InstanceConfig::default_70b().quality(), 1.0);
        assert!(InstanceConfig::small_fallback().quality() < 0.65);
    }
}
