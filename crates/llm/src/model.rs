//! Model catalog, quantization formats and the quality model.
//!
//! The paper's SaaS workload serves Llama-2 in three sizes (70B, 13B, 7B). Smaller models are
//! dramatically cheaper to serve (lower power and temperature) but lose 30–40 % quality
//! relative to the 70B model; quantization costs another 2–20 % depending on the format
//! (§3.3). TAPAS steers load toward cheaper variants only when necessary and accounts the
//! quality loss against a per-service quality SLO.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The parameter count tier of a served model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ModelSize {
    /// Llama-2 7B.
    Llama2_7B,
    /// Llama-2 13B.
    Llama2_13B,
    /// Llama-2 70B.
    Llama2_70B,
}

impl ModelSize {
    /// All catalog entries from largest (highest quality) to smallest.
    pub const ALL: [ModelSize; 3] =
        [ModelSize::Llama2_70B, ModelSize::Llama2_13B, ModelSize::Llama2_7B];

    /// Number of parameters.
    #[must_use]
    pub fn parameters(self) -> f64 {
        match self {
            ModelSize::Llama2_7B => 7.0e9,
            ModelSize::Llama2_13B => 13.0e9,
            ModelSize::Llama2_70B => 70.0e9,
        }
    }

    /// Number of transformer layers (used for KV-cache sizing).
    #[must_use]
    pub fn layers(self) -> usize {
        match self {
            ModelSize::Llama2_7B => 32,
            ModelSize::Llama2_13B => 40,
            ModelSize::Llama2_70B => 80,
        }
    }

    /// Hidden dimension (used for KV-cache sizing).
    #[must_use]
    pub fn hidden_dim(self) -> usize {
        match self {
            ModelSize::Llama2_7B => 4096,
            ModelSize::Llama2_13B => 5120,
            ModelSize::Llama2_70B => 8192,
        }
    }

    /// Number of key/value heads. Llama-2 70B uses grouped-query attention with 8 KV heads,
    /// which is also why the paper only considers tensor parallelism in powers of two up to 8.
    #[must_use]
    pub fn kv_heads(self) -> usize {
        match self {
            ModelSize::Llama2_7B => 32,
            ModelSize::Llama2_13B => 40,
            ModelSize::Llama2_70B => 8,
        }
    }

    /// Relative answer quality in `[0, 1]`, with the 70B FP16 model as the 1.0 reference.
    ///
    /// §3.3: "the 7B model reduces result quality by 30–40 % compared to the 70B model".
    #[must_use]
    pub fn base_quality(self) -> f64 {
        match self {
            ModelSize::Llama2_7B => 0.63,
            ModelSize::Llama2_13B => 0.72,
            ModelSize::Llama2_70B => 1.0,
        }
    }

    /// Short human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ModelSize::Llama2_7B => "llama2-7b",
            ModelSize::Llama2_13B => "llama2-13b",
            ModelSize::Llama2_70B => "llama2-70b",
        }
    }
}

impl fmt::Display for ModelSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Weight/activation precision of a served model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Quantization {
    /// Half precision (the quality reference).
    Fp16,
    /// 8-bit floating point.
    Fp8,
    /// 4-bit integer weights.
    Int4,
}

impl Quantization {
    /// All supported formats from highest to lowest precision.
    pub const ALL: [Quantization; 3] = [Quantization::Fp16, Quantization::Fp8, Quantization::Int4];

    /// Bytes per parameter.
    #[must_use]
    pub fn bytes_per_param(self) -> f64 {
        match self {
            Quantization::Fp16 => 2.0,
            Quantization::Fp8 => 1.0,
            Quantization::Int4 => 0.5,
        }
    }

    /// Multiplicative quality factor relative to FP16 (§3.3: 2–20 % impact).
    #[must_use]
    pub fn quality_factor(self) -> f64 {
        match self {
            Quantization::Fp16 => 1.0,
            Quantization::Fp8 => 0.97,
            Quantization::Int4 => 0.88,
        }
    }

    /// Compute speed-up factor relative to FP16 (lower precision math is faster where the
    /// hardware supports it; INT4 is mostly a bandwidth win, not a compute win).
    #[must_use]
    pub fn compute_speedup(self) -> f64 {
        match self {
            Quantization::Fp16 => 1.0,
            Quantization::Fp8 => 1.6,
            Quantization::Int4 => 1.6,
        }
    }

    /// Short name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Quantization::Fp16 => "fp16",
            Quantization::Fp8 => "fp8",
            Quantization::Int4 => "int4",
        }
    }
}

impl fmt::Display for Quantization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete model variant: a size at a precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModelVariant {
    /// Parameter-count tier.
    pub size: ModelSize,
    /// Precision.
    pub quantization: Quantization,
}

impl ModelVariant {
    /// Creates a variant.
    #[must_use]
    pub fn new(size: ModelSize, quantization: Quantization) -> Self {
        Self { size, quantization }
    }

    /// Total weight footprint in gigabytes.
    #[must_use]
    pub fn weight_bytes_gb(&self) -> f64 {
        self.size.parameters() * self.quantization.bytes_per_param() / 1.0e9
    }

    /// Combined quality in `[0, 1]` (size quality × quantization factor).
    #[must_use]
    pub fn quality(&self) -> f64 {
        self.size.base_quality() * self.quantization.quality_factor()
    }

    /// KV-cache bytes per token (2 tensors × layers × kv_heads/heads scaled hidden dim ×
    /// 2 bytes — the cache is kept at FP16 regardless of weight quantization).
    #[must_use]
    pub fn kv_bytes_per_token(&self) -> f64 {
        let head_dim = self.size.hidden_dim() as f64
            / (self.size.hidden_dim() as f64 / 128.0).max(1.0).round();
        let kv_dim = self.size.kv_heads() as f64 * head_dim;
        2.0 * self.size.layers() as f64 * kv_dim * 2.0
    }
}

impl fmt::Display for ModelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.size, self.quantization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_and_names() {
        assert_eq!(ModelSize::Llama2_70B.parameters(), 70.0e9);
        assert_eq!(ModelSize::Llama2_7B.parameters(), 7.0e9);
        assert_eq!(ModelSize::Llama2_70B.to_string(), "llama2-70b");
        assert_eq!(Quantization::Fp8.to_string(), "fp8");
        assert_eq!(ModelSize::ALL.len(), 3);
        assert_eq!(Quantization::ALL.len(), 3);
    }

    #[test]
    fn quality_ordering_matches_paper() {
        // 70B > 13B > 7B, and the 7B model is 30–40 % below the 70B reference.
        let q70 = ModelSize::Llama2_70B.base_quality();
        let q13 = ModelSize::Llama2_13B.base_quality();
        let q7 = ModelSize::Llama2_7B.base_quality();
        assert!(q70 > q13 && q13 > q7);
        assert!((0.60..=0.70).contains(&q7), "7B quality loss should be 30–40 %");
        // Quantization costs 2–20 %.
        for q in Quantization::ALL {
            let loss = 1.0 - q.quality_factor();
            assert!((0.0..=0.20).contains(&loss));
        }
    }

    #[test]
    fn quantization_shrinks_weights() {
        let fp16 = ModelVariant::new(ModelSize::Llama2_70B, Quantization::Fp16);
        let fp8 = ModelVariant::new(ModelSize::Llama2_70B, Quantization::Fp8);
        let int4 = ModelVariant::new(ModelSize::Llama2_70B, Quantization::Int4);
        assert!((fp16.weight_bytes_gb() - 140.0).abs() < 1.0);
        assert!((fp8.weight_bytes_gb() - 70.0).abs() < 1.0);
        assert!((int4.weight_bytes_gb() - 35.0).abs() < 1.0);
    }

    #[test]
    fn variant_quality_composes() {
        let best = ModelVariant::new(ModelSize::Llama2_70B, Quantization::Fp16);
        let worst = ModelVariant::new(ModelSize::Llama2_7B, Quantization::Int4);
        assert_eq!(best.quality(), 1.0);
        assert!(worst.quality() < 0.6);
        assert_eq!(best.to_string(), "llama2-70b-fp16");
    }

    #[test]
    fn kv_cache_grows_with_model_size() {
        let small = ModelVariant::new(ModelSize::Llama2_7B, Quantization::Fp16);
        let large = ModelVariant::new(ModelSize::Llama2_70B, Quantization::Fp16);
        assert!(large.kv_bytes_per_token() > small.kv_bytes_per_token() * 0.5);
        assert!(small.kv_bytes_per_token() > 0.0);
        // Grouped-query attention keeps the 70B cache from exploding: per-token cache is less
        // than 10 MB for every variant.
        for size in ModelSize::ALL {
            let v = ModelVariant::new(size, Quantization::Fp16);
            assert!(v.kv_bytes_per_token() < 10.0e6);
        }
    }

    #[test]
    fn kv_heads_match_llama2_architecture() {
        assert_eq!(ModelSize::Llama2_70B.kv_heads(), 8);
        assert_eq!(ModelSize::Llama2_7B.kv_heads(), 32);
        assert_eq!(ModelSize::Llama2_70B.layers(), 80);
    }
}
