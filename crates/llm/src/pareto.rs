//! The temperature/power vs goodput Pareto frontier (Fig. 16).
//!
//! Fig. 16 plots every profiled configuration as normalized temperature and power (lower is
//! better) against normalized goodput (higher is better), grouped by model size. Each model
//! has a Pareto frontier of configurations that minimize temperature/power with minimal
//! goodput loss; TAPAS's instance configurator walks that frontier when it needs to shed heat
//! or power.
//!
//! Because GPU temperature is (to first order) linear in per-GPU power at a fixed inlet
//! temperature (Eq. 2), the per-GPU power of the hottest phase is used as the temperature
//! proxy, and the blended server power as the power axis.

use crate::model::ModelSize;
use crate::profile::ConfigProfile;
use serde::{Deserialize, Serialize};

/// One point of the trade-off space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The profiled configuration.
    pub profile: ConfigProfile,
    /// Temperature proxy: per-GPU power of the hottest phase, in watts.
    pub temp_proxy_w: f64,
    /// Server power (blended 30 % prefill / 70 % decode), in kilowatts.
    pub server_power_kw: f64,
    /// Goodput in tokens/s.
    pub goodput: f64,
}

impl ParetoPoint {
    /// Builds the point for a profile.
    #[must_use]
    pub fn from_profile(profile: ConfigProfile) -> Self {
        let temp_proxy_w = profile
            .prefill
            .gpu_power
            .value()
            .max(profile.decode.gpu_power.value());
        Self {
            profile,
            temp_proxy_w,
            server_power_kw: profile.blended_server_power(0.7).value(),
            goodput: profile.goodput_tokens_per_s,
        }
    }

    /// Returns `true` if `other` dominates `self`: at least as good on every axis and strictly
    /// better on at least one (lower temperature proxy, lower power, higher goodput).
    #[must_use]
    pub fn is_dominated_by(&self, other: &ParetoPoint) -> bool {
        let no_worse = other.temp_proxy_w <= self.temp_proxy_w
            && other.server_power_kw <= self.server_power_kw
            && other.goodput >= self.goodput;
        let strictly_better = other.temp_proxy_w < self.temp_proxy_w
            || other.server_power_kw < self.server_power_kw
            || other.goodput > self.goodput;
        no_worse && strictly_better
    }
}

/// The Pareto-optimal subset of a configuration sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoFrontier {
    points: Vec<ParetoPoint>,
}

impl ParetoFrontier {
    /// Computes the frontier over a set of profiles.
    #[must_use]
    pub fn compute(profiles: &[ConfigProfile]) -> Self {
        let candidates: Vec<ParetoPoint> =
            profiles.iter().copied().map(ParetoPoint::from_profile).collect();
        let mut points: Vec<ParetoPoint> = candidates
            .iter()
            .filter(|p| !candidates.iter().any(|q| p.is_dominated_by(q)))
            .copied()
            .collect();
        points.sort_by(|a, b| {
            b.goodput
                .partial_cmp(&a.goodput)
                .expect("goodput is finite")
        });
        Self { points }
    }

    /// Computes the frontier restricted to one model size (matching Fig. 16's per-model
    /// frontiers).
    #[must_use]
    pub fn for_model(profiles: &[ConfigProfile], size: ModelSize) -> Self {
        let filtered: Vec<ConfigProfile> = profiles
            .iter()
            .filter(|p| p.config.variant.size == size)
            .copied()
            .collect();
        Self::compute(&filtered)
    }

    /// Frontier points, sorted by descending goodput.
    #[must_use]
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of frontier points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the frontier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The highest-goodput configuration whose per-GPU power stays at or below
    /// `max_gpu_power_w` and whose server power stays at or below `max_server_power_kw`.
    ///
    /// This is the query the instance configurator issues when it has translated a thermal or
    /// power headroom into budgets (§4.3). Returns `None` if no frontier point fits.
    #[must_use]
    pub fn best_within(
        &self,
        max_gpu_power_w: f64,
        max_server_power_kw: f64,
    ) -> Option<&ParetoPoint> {
        self.points
            .iter()
            .find(|p| p.temp_proxy_w <= max_gpu_power_w && p.server_power_kw <= max_server_power_kw)
    }

    /// The highest-goodput configuration meeting the budgets *and* a minimum quality.
    #[must_use]
    pub fn best_within_quality(
        &self,
        max_gpu_power_w: f64,
        max_server_power_kw: f64,
        min_quality: f64,
    ) -> Option<&ParetoPoint> {
        self.points.iter().find(|p| {
            p.temp_proxy_w <= max_gpu_power_w
                && p.server_power_kw <= max_server_power_kw
                && p.profile.quality >= min_quality
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InstanceConfig;
    use crate::hardware::GpuHardware;
    use crate::model::ModelSize;
    use crate::profile::ConfigProfile;

    fn sweep() -> Vec<ConfigProfile> {
        ConfigProfile::sweep(&GpuHardware::a100())
    }

    #[test]
    fn frontier_is_nonempty_and_undominated() {
        let profiles = sweep();
        let frontier = ParetoFrontier::compute(&profiles);
        assert!(!frontier.is_empty());
        assert!(frontier.len() < profiles.len());
        // No frontier point dominates another frontier point.
        for a in frontier.points() {
            for b in frontier.points() {
                assert!(!a.is_dominated_by(b) || a == b);
            }
        }
        // Points are sorted by descending goodput.
        assert!(frontier
            .points()
            .windows(2)
            .all(|w| w[0].goodput >= w[1].goodput));
    }

    #[test]
    fn every_profile_is_dominated_by_or_on_the_frontier() {
        let profiles = sweep();
        let frontier = ParetoFrontier::compute(&profiles);
        for p in profiles.iter().copied().map(ParetoPoint::from_profile) {
            let on_frontier = frontier.points().iter().any(|f| {
                f.profile.config == p.profile.config
            });
            let dominated = frontier.points().iter().any(|f| p.is_dominated_by(f));
            assert!(on_frontier || dominated);
        }
    }

    #[test]
    fn per_model_frontiers_only_contain_that_model() {
        let profiles = sweep();
        for size in ModelSize::ALL {
            let frontier = ParetoFrontier::for_model(&profiles, size);
            assert!(!frontier.is_empty());
            assert!(frontier
                .points()
                .iter()
                .all(|p| p.profile.config.variant.size == size));
        }
    }

    #[test]
    fn smaller_models_reach_lower_power_on_their_frontier() {
        // Fig. 16: the 7B cloud reaches at least as low a power floor as the 70B cloud and
        // extends to much higher goodput.
        let profiles = sweep();
        let f70 = ParetoFrontier::for_model(&profiles, ModelSize::Llama2_70B);
        let f7 = ParetoFrontier::for_model(&profiles, ModelSize::Llama2_7B);
        let min_power_70 = f70
            .points()
            .iter()
            .map(|p| p.server_power_kw)
            .fold(f64::MAX, f64::min);
        let min_power_7 = f7
            .points()
            .iter()
            .map(|p| p.server_power_kw)
            .fold(f64::MAX, f64::min);
        assert!(min_power_7 <= min_power_70 + 1e-9);
        let max_goodput_70 = f70.points().iter().map(|p| p.goodput).fold(0.0, f64::max);
        let max_goodput_7 = f7.points().iter().map(|p| p.goodput).fold(0.0, f64::max);
        assert!(max_goodput_7 > 2.0 * max_goodput_70);
        // At a power budget the 70B model can barely meet, the 7B model delivers far more
        // goodput — the reason TAPAS only falls back to it under pressure.
        let budget = min_power_70 + 0.2;
        let best_70 = f70.best_within(f64::MAX, budget);
        let best_7 = f7.best_within(f64::MAX, budget);
        if let (Some(p70), Some(p7)) = (best_70, best_7) {
            assert!(p7.goodput > p70.goodput);
        }
    }

    #[test]
    fn best_within_respects_budgets() {
        let profiles = sweep();
        let frontier = ParetoFrontier::compute(&profiles);
        let unconstrained = frontier.best_within(f64::MAX, f64::MAX).expect("non-empty");
        assert_eq!(unconstrained.goodput, frontier.points()[0].goodput);
        // A tight per-GPU power budget forces a cooler configuration.
        let constrained = frontier.best_within(200.0, f64::MAX);
        if let Some(point) = constrained {
            assert!(point.temp_proxy_w <= 200.0);
            assert!(point.goodput <= unconstrained.goodput);
        }
        // An impossible budget returns None.
        assert!(frontier.best_within(1.0, 0.001).is_none());
    }

    #[test]
    fn quality_floor_excludes_small_models() {
        // On the combined frontier the smaller models dominate on power and goodput, so a
        // high quality floor must be answered from the 70B frontier (how the configurator
        // queries it in practice).
        let profiles = sweep();
        let f70 = ParetoFrontier::for_model(&profiles, ModelSize::Llama2_70B);
        let high_quality = f70.best_within_quality(f64::MAX, f64::MAX, 0.95);
        assert!(high_quality.is_some());
        assert!(high_quality.unwrap().profile.quality >= 0.95);
        assert_eq!(
            high_quality.unwrap().profile.config.variant.size,
            ModelSize::Llama2_70B
        );
        // A floor above 1.0 can never be satisfied.
        assert!(f70.best_within_quality(f64::MAX, f64::MAX, 1.01).is_none());
    }

    #[test]
    fn single_profile_frontier_is_that_profile() {
        let profile = ConfigProfile::build(&InstanceConfig::default_70b(), &GpuHardware::a100());
        let frontier = ParetoFrontier::compute(&[profile]);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier.points()[0].profile.config, profile.config);
        let empty = ParetoFrontier::compute(&[]);
        assert!(empty.is_empty());
    }
}
