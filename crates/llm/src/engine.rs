//! Iteration-level continuous-batching engine simulator.
//!
//! This is a discrete-event model of a vLLM-style serving engine (§4.5 runs the SaaS
//! instances on vLLM): requests queue for admission, admitted requests are prefetched into the
//! running batch (their prompt is prefilled), and every scheduler iteration generates one
//! token for each running request. Iteration times come from the analytic [`PerfModel`], so
//! the engine's TTFT/TBT/goodput are consistent with the profiles used by the TAPAS
//! controllers, while still exposing queueing effects (admission delays under load) that the
//! steady-state profile cannot capture.

use crate::config::InstanceConfig;
use crate::hardware::GpuHardware;
use crate::perf::PerfModel;
use crate::request::InferenceRequest;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A request that finished during the simulation, with its observed latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// The original request.
    pub request: InferenceRequest,
    /// Seconds from submission to first output token.
    pub ttft_s: f64,
    /// Mean seconds between subsequent output tokens.
    pub mean_tbt_s: f64,
    /// Seconds from submission to the final token.
    pub latency_s: f64,
}

impl CompletedRequest {
    /// Whether this request met both SLO targets.
    #[must_use]
    pub fn met_slo(&self, ttft_target_s: f64, tbt_target_s: f64) -> bool {
        self.ttft_s <= ttft_target_s && self.mean_tbt_s <= tbt_target_s
    }
}

/// Aggregate report for a window of engine execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Wall-clock seconds simulated.
    pub elapsed_s: f64,
    /// Seconds during which the engine had work.
    pub busy_s: f64,
    /// Fraction of busy time spent in prefill (the rest is decode).
    pub prefill_fraction: f64,
    /// Total output tokens generated.
    pub tokens_generated: u64,
    /// Requests completed during the window.
    pub completed: Vec<CompletedRequest>,
    /// Requests still queued (not yet admitted) at the end of the window.
    pub queued_at_end: usize,
    /// Requests still running at the end of the window.
    pub running_at_end: usize,
    /// Mean running batch size over the window's iterations (0 if idle).
    pub mean_batch_size: f64,
}

impl EngineReport {
    /// Utilization: busy time over elapsed time.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            (self.busy_s / self.elapsed_s).clamp(0.0, 1.0)
        }
    }

    /// Output tokens per second over the window.
    #[must_use]
    pub fn throughput_tokens_per_s(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.tokens_generated as f64 / self.elapsed_s
        }
    }

    /// Fraction of completed requests that met the given SLO targets (1.0 if none completed).
    #[must_use]
    pub fn slo_attainment(&self, ttft_target_s: f64, tbt_target_s: f64) -> f64 {
        if self.completed.is_empty() {
            return 1.0;
        }
        self.completed
            .iter()
            .filter(|c| c.met_slo(ttft_target_s, tbt_target_s))
            .count() as f64
            / self.completed.len() as f64
    }
}

#[derive(Debug, Clone)]
struct RunningRequest {
    request: InferenceRequest,
    submitted_at_s: f64,
    first_token_at_s: Option<f64>,
    tokens_generated: usize,
    last_token_at_s: f64,
    tbt_accumulator_s: f64,
}

/// The continuous-batching engine for one LLM instance.
#[derive(Debug, Clone)]
pub struct InstanceEngine {
    config: InstanceConfig,
    perf: PerfModel,
    kv_capacity_tokens: usize,
    queue: VecDeque<(InferenceRequest, f64)>,
    running: Vec<RunningRequest>,
    now_s: f64,
}

impl InstanceEngine {
    /// Creates an engine for a configuration on a GPU generation.
    ///
    /// The KV-cache capacity is derived from the HBM left after the weights are resident.
    #[must_use]
    pub fn new(config: InstanceConfig, gpu: &GpuHardware) -> Self {
        let total_hbm_gb = gpu.memory_capacity_gb * config.parallelism.gpus() as f64;
        let free_gb = (total_hbm_gb - config.variant.weight_bytes_gb()).max(1.0) * 0.9;
        let kv_capacity_tokens =
            (free_gb * 1.0e9 / config.variant.kv_bytes_per_token()).max(1024.0) as usize;
        Self {
            config,
            perf: PerfModel::new(*gpu),
            kv_capacity_tokens,
            queue: VecDeque::new(),
            running: Vec::new(),
            now_s: 0.0,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &InstanceConfig {
        &self.config
    }

    /// The performance model backing the engine.
    #[must_use]
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// KV-cache capacity in tokens.
    #[must_use]
    pub fn kv_capacity_tokens(&self) -> usize {
        self.kv_capacity_tokens
    }

    /// Current engine time in seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Number of requests waiting for admission plus currently running.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.running.len()
    }

    /// Submits a request to the admission queue at the current engine time.
    pub fn submit(&mut self, request: InferenceRequest) {
        self.queue.push_back((request, self.now_s));
    }

    /// KV-cache tokens currently pinned by the running batch.
    fn kv_in_use(&self) -> usize {
        self.running
            .iter()
            .map(|r| r.request.prompt_tokens + r.tokens_generated)
            .sum()
    }

    /// Runs the engine for `duration_s` seconds of simulated time and returns the report.
    ///
    /// # Panics
    /// Panics if `duration_s` is not positive.
    pub fn run_for(&mut self, duration_s: f64) -> EngineReport {
        assert!(duration_s > 0.0, "duration must be positive");
        let end_s = self.now_s + duration_s;
        let mut busy_s = 0.0;
        let mut prefill_s = 0.0;
        let mut tokens_generated: u64 = 0;
        let mut completed = Vec::new();
        let mut batch_size_sum = 0.0;
        let mut iterations = 0u64;

        while self.now_s < end_s {
            // Admit queued requests while there is batch and KV headroom.
            let mut admitted_prompt_tokens = 0usize;
            while self.running.len() < self.config.max_batch_size {
                let fits = self
                    .queue
                    .front()
                    .map(|(r, _)| {
                        self.kv_in_use() + admitted_prompt_tokens + r.total_tokens()
                            <= self.kv_capacity_tokens
                    })
                    .unwrap_or(false);
                if !fits {
                    break;
                }
                let (request, submitted_at_s) = self.queue.pop_front().expect("checked front");
                admitted_prompt_tokens += request.prompt_tokens;
                self.running.push(RunningRequest {
                    request,
                    submitted_at_s,
                    first_token_at_s: None,
                    tokens_generated: 0,
                    last_token_at_s: 0.0,
                    tbt_accumulator_s: 0.0,
                });
            }

            if self.running.is_empty() {
                // Idle: jump straight to the end of the window (new work only arrives via
                // `submit`, which external callers do between windows).
                self.now_s = end_s;
                break;
            }

            // One scheduler iteration: prefill any newly admitted prompts, then one decode
            // step for the whole running batch.
            let prefill_time = if admitted_prompt_tokens > 0 {
                self.perf.prefill_time_s(&self.config, admitted_prompt_tokens)
            } else {
                0.0
            };
            let mean_context = (self.kv_in_use() / self.running.len().max(1)).max(1);
            let decode_time =
                self.perf
                    .decode_step_time_s(&self.config, self.running.len(), mean_context);
            let iteration_time = prefill_time + decode_time;
            self.now_s += iteration_time;
            busy_s += iteration_time;
            prefill_s += prefill_time;
            batch_size_sum += self.running.len() as f64;
            iterations += 1;

            // Every running request receives one token.
            let now = self.now_s;
            let mut still_running = Vec::with_capacity(self.running.len());
            for mut r in self.running.drain(..) {
                r.tokens_generated += 1;
                tokens_generated += 1;
                if r.first_token_at_s.is_none() {
                    r.first_token_at_s = Some(now);
                } else {
                    r.tbt_accumulator_s += now - r.last_token_at_s;
                }
                r.last_token_at_s = now;
                if r.tokens_generated >= r.request.output_tokens {
                    let ttft = r.first_token_at_s.expect("set above") - r.submitted_at_s;
                    let decode_steps = (r.tokens_generated - 1).max(1) as f64;
                    completed.push(CompletedRequest {
                        request: r.request,
                        ttft_s: ttft,
                        mean_tbt_s: if r.tokens_generated > 1 {
                            r.tbt_accumulator_s / decode_steps
                        } else {
                            0.0
                        },
                        latency_s: now - r.submitted_at_s,
                    });
                } else {
                    still_running.push(r);
                }
            }
            self.running = still_running;
        }

        EngineReport {
            elapsed_s: duration_s,
            busy_s,
            prefill_fraction: if busy_s > 0.0 { prefill_s / busy_s } else { 0.0 },
            tokens_generated,
            completed,
            queued_at_end: self.queue.len(),
            running_at_end: self.running.len(),
            mean_batch_size: if iterations > 0 {
                batch_size_sum / iterations as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CustomerId, RequestId};
    use simkit::time::SimTime;

    fn request(id: u64, prompt: usize, output: usize) -> InferenceRequest {
        InferenceRequest {
            id: RequestId(id),
            customer: CustomerId(id % 7),
            arrival: SimTime::ZERO,
            prompt_tokens: prompt,
            output_tokens: output,
        }
    }

    fn engine() -> InstanceEngine {
        InstanceEngine::new(InstanceConfig::default_70b(), &GpuHardware::a100())
    }

    #[test]
    fn idle_engine_reports_zero_utilization() {
        let mut e = engine();
        let report = e.run_for(10.0);
        assert_eq!(report.utilization(), 0.0);
        assert_eq!(report.tokens_generated, 0);
        assert!(report.completed.is_empty());
        assert_eq!(report.mean_batch_size, 0.0);
        assert_eq!(report.slo_attainment(1.0, 1.0), 1.0);
    }

    #[test]
    fn single_request_completes_with_unloaded_latency() {
        let mut e = engine();
        let slo = e.perf().slo_targets(e.config());
        e.submit(request(1, 512, 64));
        let report = e.run_for(30.0);
        assert_eq!(report.completed.len(), 1);
        let done = report.completed[0];
        assert_eq!(done.request.id, RequestId(1));
        // An unloaded request should comfortably meet the 5× SLO.
        assert!(done.met_slo(slo.ttft_s, slo.tbt_s));
        assert!(done.ttft_s > 0.0);
        assert!(done.latency_s > done.ttft_s);
        assert_eq!(report.tokens_generated, 64);
        assert_eq!(report.queued_at_end, 0);
        assert_eq!(report.running_at_end, 0);
    }

    #[test]
    fn batching_amortizes_work() {
        // Serving 16 identical requests together should take far less than 16× one request.
        let mut single = engine();
        single.submit(request(0, 256, 64));
        let single_report = single.run_for(60.0);
        let single_busy = single_report.busy_s;

        let mut batched = engine();
        for i in 0..16 {
            batched.submit(request(i, 256, 64));
        }
        let batched_report = batched.run_for(120.0);
        assert_eq!(batched_report.completed.len(), 16);
        assert!(batched_report.busy_s < 8.0 * single_busy);
        assert!(batched_report.mean_batch_size > 4.0);
    }

    #[test]
    fn overload_leaves_requests_queued_and_violates_slo() {
        let mut e = engine();
        // Far more work than the engine can serve in the window.
        for i in 0..512 {
            e.submit(request(i, 1024, 256));
        }
        let slo = e.perf().slo_targets(e.config());
        let report = e.run_for(20.0);
        assert!(report.queued_at_end + report.running_at_end > 0);
        assert!(report.utilization() > 0.95);
        // Late-admitted requests blow through the TTFT SLO.
        if !report.completed.is_empty() {
            assert!(report.slo_attainment(slo.ttft_s, slo.tbt_s) < 1.0);
        }
    }

    #[test]
    fn kv_capacity_limits_admission() {
        let e = engine();
        // 70B FP16 on 8×80 GB leaves ~500 GB for KV -> capacity far above a single request.
        assert!(e.kv_capacity_tokens() > 10_000);
        let mut small = InstanceEngine::new(
            {
                let mut c = InstanceConfig::default_70b();
                c.max_batch_size = 64;
                c
            },
            &GpuHardware::a100(),
        );
        // Submit more concurrent tokens than fit; the engine must stagger admission rather
        // than panic.
        for i in 0..200 {
            small.submit(request(i, 7000, 100));
        }
        let report = small.run_for(5.0);
        assert!(report.running_at_end <= small.config().max_batch_size);
    }

    #[test]
    fn throughput_approaches_profile_goodput() {
        let mut e = engine();
        let goodput = e.perf().goodput_tokens_per_s(e.config());
        // Keep the engine saturated with short-prompt requests.
        for i in 0..600 {
            e.submit(request(i, 64, 128));
        }
        let report = e.run_for(30.0);
        let throughput = report.throughput_tokens_per_s();
        assert!(
            throughput > 0.3 * goodput,
            "engine throughput {throughput} too far below analytic goodput {goodput}"
        );
    }

    #[test]
    fn smaller_model_finishes_faster() {
        let mut big = engine();
        let mut small = InstanceEngine::new(InstanceConfig::small_fallback(), &GpuHardware::a100());
        big.submit(request(0, 512, 128));
        small.submit(request(0, 512, 128));
        let big_report = big.run_for(60.0);
        let small_report = small.run_for(60.0);
        assert!(small_report.completed[0].latency_s < big_report.completed[0].latency_s);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_panics() {
        let mut e = engine();
        let _ = e.run_for(0.0);
    }
}
