//! # tapas-repro — workspace root for the TAPAS reproduction
//!
//! This crate re-exports the workspace's public surface as a convenience prelude for the
//! examples and integration tests. The actual functionality lives in the member crates:
//!
//! * [`simkit`] — simulation substrate (units, time, statistics, regression, RNG).
//! * [`dc_sim`] — datacenter physics (topology, cooling, power, failures).
//! * [`llm_sim`] — LLM inference substrate (models, configurations, profiles, engine).
//! * [`workload`] — trace generators (VM arrivals, endpoints, diurnal load, prediction).
//! * [`tapas`] — the paper's contribution: placement, routing, instance configuration,
//!   emergency response and the policy matrix.
//! * [`cluster_sim`] — the end-to-end discrete-time cluster simulator and the experiment
//!   harnesses.
//!
//! ```
//! use tapas_repro::prelude::*;
//!
//! let report = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
//! assert!(report.peak_row_power_kw() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use cluster_sim;
pub use dc_sim;
pub use llm_sim;
pub use simkit;
pub use tapas;
pub use workload;

/// Commonly used items, re-exported for examples and quick experiments.
pub mod prelude {
    pub use cluster_sim::experiment::{
        ExperimentConfig, FleetConfig, GeoPolicy, RequestFabricConfig, SiteConfig,
    };
    pub use cluster_sim::fabric::{FabricGenerator, FabricRequest, RequestFabric};
    pub use cluster_sim::fleet::FleetSimulator;
    pub use cluster_sim::metrics::{FleetReport, LatencyHistogram, RequestMetrics, RunReport};
    pub use cluster_sim::scenario::generator::{generate, GeneratorConfig, IntensityTier};
    pub use cluster_sim::scenario::{
        energy_cost_usd, fleet_energy_cost_usd, ResolvedTimeline, Scenario, ScenarioBuilder,
        ScenarioError, ScenarioEvent, SiteSelector,
    };
    pub use cluster_sim::simulator::ClusterSimulator;
    pub use dc_sim::engine::{Datacenter, StepInput};
    pub use dc_sim::failures::FailureSchedule;
    pub use dc_sim::topology::{LayoutConfig, ServerSpec};
    pub use dc_sim::weather::Climate;
    pub use llm_sim::config::InstanceConfig;
    pub use llm_sim::hardware::GpuHardware;
    pub use llm_sim::profile::ConfigProfile;
    pub use llm_sim::batch::{BatchCompletion, BatchScheduler};
    pub use simkit::queue::EventQueue;
    pub use simkit::time::{SimDuration, SimTime};
    pub use simkit::units::{Celsius, Kilowatts, Watts};
    pub use tapas::policy::Policy;
    pub use tapas::profiles::ProfileStore;
    pub use workload::trace::{
        parse_csv, parse_jsonl, vm_arrivals_from_trace, TraceError, TraceRecord,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        let config = ExperimentConfig::small_smoke_test();
        assert_eq!(config.policy, Policy::Baseline);
        let _ = Celsius::new(20.0);
        let _ = InstanceConfig::default_70b();
    }
}
