//! Request-fabric integration tests: event-queue ordering against a reference model,
//! KV-cache admission invariants, fabric-enabled fleet determinism, trace replay through
//! both encodings, and a pinned golden metrics artifact.
//!
//! Regenerate the golden file after an intentional format change with:
//! `UPDATE_GOLDEN=1 cargo test --test request_fabric`.

use tapas_repro::prelude::*;
use tapas_repro::simkit::rng::SimRng;

const SAMPLE_CSV: &str = include_str!("data/sample_requests.csv");
const SAMPLE_JSONL: &str = include_str!("data/sample_requests.jsonl");
const GOLDEN_METRICS: &str = include_str!("golden/request_fabric_metrics.json");

fn fabric_smoke() -> ExperimentConfig {
    ExperimentConfig::small_smoke_test()
        .with_request_fabric(RequestFabricConfig::default())
}

// --- EventQueue ordering -----------------------------------------------------------

/// Reference model: a stable sort by timestamp preserves push order among equal
/// timestamps — exactly the `(time, seq)` contract the binary heap must honour.
#[test]
fn event_queue_matches_a_stable_sorted_reference_under_random_workloads() {
    let mut rng = SimRng::seed_from(2025).derive("queue-property");
    for round in 0..50 {
        let mut queue = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        let pushes = 1 + rng.uniform_usize(0, 400);
        for payload in 0..pushes {
            // Narrow time range on odd rounds forces heavy timestamp collisions.
            let span = if round % 2 == 0 { 10_000 } else { 7 };
            let time = rng.uniform_usize(0, span) as u64;
            queue.push(time, payload);
            reference.push((time, payload));
        }
        reference.sort_by_key(|&(time, _)| time); // stable: ties keep push order
        let mut drained = Vec::new();
        while let Some((time, payload)) = queue.pop() {
            drained.push((time, payload));
        }
        assert_eq!(drained, reference, "round {round} diverged from the reference");
    }
}

#[test]
fn event_queue_drain_until_is_inclusive_and_leaves_the_rest() {
    let mut queue = EventQueue::new();
    for time in [5u64, 1, 9, 5, 3] {
        queue.push(time, time);
    }
    let mut drained = Vec::new();
    queue.drain_until(5, |time, _| drained.push(time));
    assert_eq!(drained, vec![1, 3, 5, 5]);
    assert_eq!(queue.len(), 1);
    assert_eq!(queue.peek_time(), Some(9));
}

// --- KV-cache admission invariants -------------------------------------------------

/// Under sustained overload the scheduler's KV accounting must hold three invariants at
/// every step boundary: occupancy ≤ committed ≤ capacity, and all three non-negative.
/// Committed-peak admission means admitted sequences can always grow to completion.
#[test]
fn kv_occupancy_never_exceeds_committed_nor_capacity() {
    let gpu = GpuHardware::a100();
    let config = InstanceConfig::default_70b();
    let mut scheduler = BatchScheduler::new(config, &gpu, 1);
    let capacity = scheduler.kv_capacity();
    assert!(capacity > 0);

    let mut rng = SimRng::seed_from(7).derive("kv-invariants");
    let mut offered = 0u64;
    let mut completions = Vec::new();
    let mut completed = 0u64;
    let mut arrival = 0u64;
    for window in 0..240u64 {
        // A bursty arrival process that keeps the queue deep.
        for _ in 0..rng.uniform_usize(0, 6) {
            arrival += rng.uniform_usize(0, 450) as u64;
            let prompt = 1 + rng.uniform_usize(0, capacity / 6);
            let output = 1 + rng.uniform_usize(0, 300);
            scheduler.offer(offered, prompt, output, arrival);
            offered += 1;
        }
        let deadline = (window + 1) * 500 + arrival.saturating_sub(arrival % 500);
        completions.clear();
        scheduler.advance_to(deadline, &mut completions);
        completed += completions.len() as u64;
        assert!(
            scheduler.kv_in_use() <= scheduler.kv_committed(),
            "window {window}: occupancy {} exceeds committed {}",
            scheduler.kv_in_use(),
            scheduler.kv_committed()
        );
        assert!(
            scheduler.kv_committed() <= capacity,
            "window {window}: committed {} exceeds capacity {capacity}",
            scheduler.kv_committed()
        );
        for done in &completions {
            assert!(done.first_token_ms >= done.arrival_ms);
            assert!(done.finish_ms >= done.first_token_ms);
        }
    }
    assert!(completed > 0, "the overloaded scheduler still makes progress");
    assert!(offered > completed, "overload keeps a backlog (offered {offered})");
}

/// Randomized replica churn — shrinks standing in for failures, grows for recovery —
/// under sustained bursty load with the fault policy armed: the KV accounting
/// invariants `kv_in_use ≤ kv_committed ≤ kv_capacity` hold after every shrink and
/// every step (capacity itself moves with the replica count), every completion's TTFT
/// clock starts at the request's *original* arrival (re-admission after preemption
/// must not reset it), and no request ever vanishes: offered requests are exactly
/// partitioned into completed, shed, timed out, and still in flight.
#[test]
fn kv_invariants_hold_under_randomized_replica_churn() {
    let gpu = GpuHardware::a100();
    let config = InstanceConfig::default_70b();
    let mut scheduler = BatchScheduler::new(config, &gpu, 4);
    scheduler.set_fault_policy(30_000, 2, 256);
    let mut rng = SimRng::seed_from(11).derive("churn-invariants");
    let mut arrivals: Vec<u64> = Vec::new(); // original arrival, indexed by tag
    let mut completions = Vec::new();
    let mut completed = 0u64;
    let mut now = 0u64;
    let mut arrival = 0u64;

    fn assert_kv_invariants(scheduler: &BatchScheduler, label: &str) {
        assert!(
            scheduler.kv_in_use() <= scheduler.kv_committed(),
            "{label}: occupancy {} exceeds committed {}",
            scheduler.kv_in_use(),
            scheduler.kv_committed()
        );
        assert!(
            scheduler.kv_committed() <= scheduler.kv_capacity(),
            "{label}: committed {} exceeds capacity {}",
            scheduler.kv_committed(),
            scheduler.kv_capacity()
        );
    }

    for window in 0..300u64 {
        for _ in 0..rng.uniform_usize(0, 12) {
            // Arrivals are offered in nondecreasing time order (the stream contract).
            arrival = arrival.max(now) + rng.uniform_usize(0, 100) as u64;
            let prompt = 1 + rng.uniform_usize(0, 20_000);
            let output = 1 + rng.uniform_usize(0, 400);
            scheduler.offer(arrivals.len() as u64, prompt, output, arrival);
            arrivals.push(arrival);
        }
        // Replica churn: a shrink is a failure wave, a grow is recovery. Both must
        // leave the accounting consistent immediately, before any time passes.
        let replicas = 1 + rng.uniform_usize(0, 4);
        scheduler.set_replicas(replicas);
        assert_kv_invariants(&scheduler, &format!("window {window} after set_replicas"));

        now += 500;
        completions.clear();
        scheduler.advance_to(now, &mut completions);
        assert_kv_invariants(&scheduler, &format!("window {window} after advance"));
        for done in &completions {
            assert_eq!(
                done.arrival_ms,
                arrivals[done.tag as usize],
                "window {window}: TTFT must be measured from the original arrival"
            );
            assert!(done.first_token_ms >= done.arrival_ms);
            assert!(done.finish_ms >= done.first_token_ms);
        }
        completed += completions.len() as u64;
    }

    let faults = scheduler.faults();
    assert!(completed > 0, "the churned scheduler still completes work");
    assert!(faults.preemptions > 0, "shrinks must actually exercise preemption");
    assert_eq!(
        arrivals.len() as u64,
        completed
            + faults.shed
            + faults.timeouts
            + (scheduler.queue_len() + scheduler.running_len()) as u64,
        "request conservation must hold exactly ({faults:?})"
    );
}

// --- Fleet determinism -------------------------------------------------------------

#[test]
fn fabric_enabled_three_site_fleet_is_byte_identical_across_same_seed_runs() {
    let fleet = || {
        let mut base = fabric_smoke();
        base.policy = Policy::Tapas;
        FleetSimulator::new(FleetConfig::evaluation(base, 3)).run()
    };
    let a = fleet();
    let b = fleet();
    let json_a = serde_json::to_string(&a).expect("serialize");
    let json_b = serde_json::to_string(&b).expect("serialize");
    assert_eq!(json_a, json_b, "same-seed fabric fleets must serialize identically");
    // Every site ran the fabric and the fleet-wide merge sees their requests.
    let merged = a.request_fabric().expect("fabric enabled on every site");
    assert!(merged.completed > 0);
    for site in &a.sites {
        assert!(site.request_fabric.is_some());
    }
    // The per-request stream was actually spread by the geo stage.
    let active_sites = a
        .sites
        .iter()
        .filter(|s| s.request_fabric.as_ref().is_some_and(|m| m.completed > 0))
        .count();
    assert!(active_sites >= 2, "requests must spread beyond one site");
    // Attainment curves are cumulative in the multiplier.
    let curve = merged.attainment_curve();
    assert!(curve.windows(2).all(|p| p[0] <= p[1]), "curve must be monotone");
}

#[test]
fn single_site_fabric_fleet_wraps_the_plain_simulator() {
    let base = fabric_smoke();
    let fleet = FleetSimulator::new(FleetConfig::single_site(base.clone())).run();
    let single = ClusterSimulator::new(base).run();
    assert_eq!(
        serde_json::to_string(&fleet.sites[0]).expect("serialize"),
        serde_json::to_string(&single).expect("serialize"),
        "a 1-site fabric fleet must reproduce the single-datacenter run bit for bit"
    );
}

#[test]
fn disabling_the_fabric_leaves_reports_free_of_request_metrics() {
    let report = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
    assert!(report.request_fabric.is_none());
    let json = serde_json::to_string(&report).expect("serialize");
    assert!(!json.contains("request_fabric"));
}

// --- Trace replay ------------------------------------------------------------------

#[test]
fn csv_and_jsonl_replays_are_byte_identical_and_complete_every_request() {
    let csv = parse_csv(SAMPLE_CSV).expect("sample CSV parses");
    let jsonl = parse_jsonl(SAMPLE_JSONL).expect("sample JSONL parses");
    assert_eq!(csv, jsonl, "the two sample encodings carry the same records");

    let from_csv = ClusterSimulator::with_request_trace(ExperimentConfig::small_smoke_test(), &csv)
        .expect("trace endpoints are in the smoke catalog")
        .run();
    let from_jsonl =
        ClusterSimulator::with_request_trace(ExperimentConfig::small_smoke_test(), &jsonl)
            .expect("trace endpoints are in the smoke catalog")
            .run();
    assert_eq!(
        serde_json::to_string(&from_csv).expect("serialize"),
        serde_json::to_string(&from_jsonl).expect("serialize"),
        "replaying either encoding must produce identical runs"
    );
    let metrics = from_csv.request_fabric.as_ref().expect("replay enables the fabric");
    assert_eq!(
        metrics.completed,
        csv.len() as u64,
        "every trace request finishes inside the two-hour horizon"
    );
    // TTFT and TBT were measured for every request.
    assert_eq!(metrics.ttft.total(), metrics.completed);
    assert_eq!(metrics.tbt.total(), metrics.completed);
}

#[test]
fn trace_replay_rejects_unknown_endpoints_with_a_typed_error() {
    let mut records = parse_csv(SAMPLE_CSV).expect("sample CSV parses");
    records[0].endpoint = 99;
    records.sort_by_key(|r| r.timestamp_ms);
    let err = ClusterSimulator::with_request_trace(ExperimentConfig::small_smoke_test(), &records)
        .expect_err("endpoint 99 is not in the smoke catalog");
    assert_eq!(err, TraceError::UnknownEndpoint { endpoint: 99 });
    let fleet_err = FleetSimulator::with_request_trace(
        FleetConfig::single_site(ExperimentConfig::small_smoke_test()),
        &records,
    )
    .map(|_| ())
    .expect_err("the fleet entry validates against the base catalog");
    assert_eq!(fleet_err, TraceError::UnknownEndpoint { endpoint: 99 });
}

#[test]
fn fleet_trace_replay_routes_records_across_sites() {
    let records = parse_csv(SAMPLE_CSV).expect("sample CSV parses");
    let mut base = ExperimentConfig::small_smoke_test();
    base.policy = Policy::Tapas;
    let report = FleetSimulator::with_request_trace(FleetConfig::evaluation(base, 3), &records)
        .expect("trace endpoints are in the base catalog")
        .run();
    let merged = report.request_fabric().expect("fabric enabled by the replay entry");
    assert_eq!(merged.completed, records.len() as u64);
}

// --- Golden artifact ---------------------------------------------------------------

/// Pins the serialized per-request metrics block of a seeded fabric run: histogram
/// bucket layout, curve layout and every count. Catches both behavioural drift in the
/// fabric (different completions) and serialization drift in the metrics block.
#[test]
fn fabric_metrics_golden_artifact_is_stable() {
    let report = ClusterSimulator::new(fabric_smoke()).run();
    let metrics = report.request_fabric.as_ref().expect("fabric enabled");
    let json = serde_json::to_string(metrics).expect("serialize");

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/request_fabric_metrics.json"),
            &json,
        )
        .expect("write golden file");
        return;
    }

    assert_eq!(
        json,
        GOLDEN_METRICS.trim_end(),
        "fabric metrics drifted from the golden file; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test request_fabric"
    );
    let back: RequestMetrics = serde_json::from_str(GOLDEN_METRICS).expect("deserialize");
    assert_eq!(serde_json::to_string(&back).expect("serialize"), json);
}
