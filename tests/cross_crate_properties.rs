//! Property-based integration tests spanning crates: invariants that must hold for any
//! workload mix, load level or configuration the generators can produce.

use proptest::prelude::*;
use tapas_repro::prelude::*;

use dc_sim::engine::StepInput;
use dc_sim::failures::FailureState;
use dc_sim::ids::ServerId;
use dc_sim::topology::LayoutConfig;
use llm_sim::config::{FrequencyScale, TensorParallelism};
use llm_sim::model::{ModelSize, ModelVariant, Quantization};
use llm_sim::perf::PerfModel;
use simkit::time::{SimDuration, SimTime};
use tapas::placement::{PlacementRequest, TapasPlacement, VmPlacementPolicy};
use tapas::state::ClusterState;
use workload::endpoints::EndpointId;
use workload::vm::{IaasCustomerId, Vm, VmId, VmKind};

fn small_datacenter() -> Datacenter {
    Datacenter::new(LayoutConfig::small_test_cluster().build(), 7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The physics engine never produces non-finite temperatures or powers, and both are
    /// monotone in a uniform load increase, for any outside temperature and load level.
    #[test]
    fn physics_is_finite_and_monotone(outside in -10.0f64..45.0, load in 0.0f64..1.0) {
        let dc = small_datacenter();
        let low = dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(outside), load * 0.5));
        let high = dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(outside), load));
        prop_assert!(low.max_gpu_temp().value().is_finite());
        prop_assert!(high.peak_row_power().value().is_finite());
        prop_assert!(high.max_gpu_temp().value() + 1e-9 >= low.max_gpu_temp().value());
        prop_assert!(high.peak_row_power().value() + 1e-9 >= low.peak_row_power().value());
    }

    /// Power capping directives always reduce power (fractions in (0, 1)) and only appear
    /// when some level is genuinely over budget.
    #[test]
    fn capping_fractions_are_valid(load in 0.0f64..1.0, capacity in 0.3f64..1.0) {
        let dc = small_datacenter();
        let mut input = StepInput::uniform_load(dc.layout(), Celsius::new(25.0), load);
        let mut failures = FailureState::healthy();
        failures.failed_upses.insert(dc_sim::ids::UpsId::new(0), capacity);
        input.failures = failures;
        let outcome = dc.evaluate(&input);
        for directive in &outcome.power.capping {
            prop_assert!(directive.power_fraction > 0.0 && directive.power_fraction < 1.0);
        }
        if outcome.power.capping.is_empty() {
            prop_assert!(!outcome.power.any_over_budget());
        }
    }

    /// The TAPAS allocator never places a VM on an occupied server, and accepts every VM while
    /// free servers remain.
    #[test]
    fn allocator_respects_occupancy(loads in proptest::collection::vec(0.3f64..1.0, 1..8), saas_mask in 0u8..255) {
        let layout = LayoutConfig::small_test_cluster().build();
        let dc = Datacenter::new(layout.clone(), 3);
        let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
        let policy = TapasPlacement::default();
        let mut state = ClusterState::new(layout.server_count());
        for (i, &load) in loads.iter().enumerate() {
            let saas = (saas_mask >> (i % 8)) & 1 == 1;
            let vm = Vm {
                id: VmId(i as u64),
                kind: if saas {
                    VmKind::Saas { endpoint: EndpointId(0) }
                } else {
                    VmKind::Iaas { customer: IaasCustomerId(0) }
                },
                arrival: SimTime::ZERO,
                lifetime: SimDuration::from_days(7),
            };
            let request = PlacementRequest { vm, predicted_peak_load: load };
            let chosen = policy.place(&request, &state, &layout, &profiles);
            let server = chosen.expect("free servers remain");
            prop_assert!(state.is_free(server));
            state.place(vm, server, load, None).expect("placement on a free server");
        }
        prop_assert_eq!(state.placed_count(), loads.len());
    }

    /// The analytic LLM performance model is consistent for every configuration in the sweep:
    /// goodput positive, decode slower with longer contexts, prefill slower at lower clocks.
    #[test]
    fn perf_model_is_consistent(size_idx in 0usize..3, quant_idx in 0usize..3, tp_idx in 0usize..3,
                                batch in 1usize..64, freq in 0.55f64..1.0) {
        let config = InstanceConfig {
            variant: ModelVariant::new(ModelSize::ALL[size_idx], Quantization::ALL[quant_idx]),
            parallelism: TensorParallelism::ALL[tp_idx],
            max_batch_size: batch,
            frequency: FrequencyScale::new(freq),
        };
        let perf = PerfModel::new(GpuHardware::a100());
        prop_assert!(perf.goodput_tokens_per_s(&config) > 0.0);
        prop_assert!(perf.decode_step_time_s(&config, batch, 2000) >= perf.decode_step_time_s(&config, batch, 500));
        let slower = InstanceConfig { frequency: FrequencyScale::new(freq * 0.8), ..config };
        prop_assert!(perf.prefill_time_s(&slower, 512) > perf.prefill_time_s(&config, 512) * 0.99);
        let targets = perf.slo_targets(&config);
        prop_assert!(targets.ttft_s > perf.ttft_unloaded_s(&config));
    }

    /// Profiled configurations always stay below the DGX A100 server TDP and keep quality in
    /// (0, 1], for any point of the configuration space that fits in memory.
    #[test]
    fn profiles_respect_hardware_envelope(size_idx in 0usize..3, quant_idx in 0usize..3, tp_idx in 0usize..3,
                                          batch_idx in 0usize..3, freq_idx in 0usize..4) {
        let config = InstanceConfig {
            variant: ModelVariant::new(ModelSize::ALL[size_idx], Quantization::ALL[quant_idx]),
            parallelism: TensorParallelism::ALL[tp_idx],
            max_batch_size: InstanceConfig::BATCH_SIZES[batch_idx],
            frequency: FrequencyScale::new(FrequencyScale::STEPS[freq_idx]),
        };
        let gpu = GpuHardware::a100();
        prop_assume!(config.fits_in_memory(gpu.memory_capacity_gb));
        let profile = ConfigProfile::build(&config, &gpu);
        prop_assert!(profile.prefill.server_power.value() <= 6.5 + 1e-9);
        prop_assert!(profile.decode.server_power.value() <= 6.5 + 1e-9);
        prop_assert!(profile.quality > 0.0 && profile.quality <= 1.0);
        prop_assert!(profile.prefill.gpu_power.value() <= 400.0 + 1e-9);
    }
}

/// Deterministic cross-crate check: the cluster state retires VMs exactly at their departure
/// and placement never exceeds the server count (non-proptest because it spans the whole
/// arrival generator).
#[test]
fn arrival_stream_fits_the_cluster() {
    let layout = LayoutConfig::small_test_cluster().build();
    let dc = Datacenter::new(layout.clone(), 5);
    let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
    let catalog = workload::endpoints::EndpointCatalog::evaluation(2, 10.0, 5);
    let mut generator = workload::arrivals::VmArrivalGenerator::new(
        workload::arrivals::ArrivalConfig {
            saas_fraction: 0.5,
            initial_population: 6,
            arrivals_per_day: 4.0,
            iaas_customers: 5,
            horizon: SimTime::from_days(2),
        },
        5,
    );
    let policy = TapasPlacement::default();
    let mut state = ClusterState::new(layout.server_count());
    let mut placed = 0;
    for vm in generator.generate(&catalog) {
        state.retire_expired(vm.arrival);
        let request = PlacementRequest { vm, predicted_peak_load: 0.8 };
        if let Some(server) = policy.place(&request, &state, &layout, &profiles) {
            assert!(server.index() < layout.server_count());
            state.place(vm, server, 0.8, None).unwrap();
            placed += 1;
        }
    }
    assert!(placed >= 6, "at least the initial population fits");
    assert!(state.placed_count() <= layout.server_count());
    let _ = ServerId::new(0);
}
