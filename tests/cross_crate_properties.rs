//! Property-style integration tests spanning crates: invariants that must hold for any
//! workload mix, load level or configuration the generators can produce.
//!
//! The build environment vendors its dependencies offline, so instead of proptest these
//! tests drive the same randomized cases from a seeded [`simkit::rng::SimRng`] stream: every
//! case is deterministic, reproducible from the printed seed, and exercises the same
//! parameter ranges the original proptest strategies used.

use tapas_repro::prelude::*;

use dc_sim::engine::StepInput;
use dc_sim::failures::FailureState;
use dc_sim::ids::ServerId;
use dc_sim::topology::LayoutConfig;
use llm_sim::config::{FrequencyScale, TensorParallelism};
use llm_sim::model::{ModelSize, ModelVariant, Quantization};
use llm_sim::perf::PerfModel;
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};
use tapas::placement::{PlacementRequest, TapasPlacement, VmPlacementPolicy};
use tapas::state::ClusterState;
use workload::endpoints::EndpointId;
use workload::vm::{IaasCustomerId, Vm, VmId, VmKind};

const CASES: usize = 24;

fn small_datacenter() -> Datacenter {
    Datacenter::new(LayoutConfig::small_test_cluster().build(), 7)
}

/// The physics engine never produces non-finite temperatures or powers, and both are
/// monotone in a uniform load increase, for any outside temperature and load level.
#[test]
fn physics_is_finite_and_monotone() {
    let dc = small_datacenter();
    let mut rng = SimRng::seed_from(101).derive("physics-cases");
    for case in 0..CASES {
        let outside = rng.uniform(-10.0, 45.0);
        let load = rng.uniform(0.0, 1.0);
        let low =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(outside), load * 0.5));
        let high = dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(outside), load));
        assert!(low.max_gpu_temp().value().is_finite(), "case {case}");
        assert!(high.peak_row_power().value().is_finite(), "case {case}");
        assert!(
            high.max_gpu_temp().value() + 1e-9 >= low.max_gpu_temp().value(),
            "case {case}: temperature must be monotone in load"
        );
        assert!(
            high.peak_row_power().value() + 1e-9 >= low.peak_row_power().value(),
            "case {case}: power must be monotone in load"
        );
    }
}

/// Power capping directives always reduce power (fractions in (0, 1)) and only appear when
/// some level is genuinely over budget.
#[test]
fn capping_fractions_are_valid() {
    let dc = small_datacenter();
    let mut rng = SimRng::seed_from(102).derive("capping-cases");
    for case in 0..CASES {
        let load = rng.uniform(0.0, 1.0);
        let capacity = rng.uniform(0.3, 1.0);
        let mut input = StepInput::uniform_load(dc.layout(), Celsius::new(25.0), load);
        let mut failures = FailureState::healthy();
        failures.fail_ups(dc_sim::ids::UpsId::new(0), capacity);
        input.failures = failures;
        let outcome = dc.evaluate(&input);
        for directive in &outcome.power.capping {
            assert!(
                directive.power_fraction > 0.0 && directive.power_fraction < 1.0,
                "case {case}: fraction {}",
                directive.power_fraction
            );
        }
        if outcome.power.capping.is_empty() {
            assert!(!outcome.power.any_over_budget(), "case {case}");
        }
    }
}

/// The TAPAS allocator never places a VM on an occupied server, and accepts every VM while
/// free servers remain.
#[test]
fn allocator_respects_occupancy() {
    let layout = LayoutConfig::small_test_cluster().build();
    let dc = Datacenter::new(layout.clone(), 3);
    let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
    let policy = TapasPlacement::default();
    let mut rng = SimRng::seed_from(103).derive("allocator-cases");
    for case in 0..CASES {
        let vm_count = rng.uniform_usize(1, 8);
        let saas_mask = rng.next_u64();
        let mut state = ClusterState::new(layout.server_count());
        for i in 0..vm_count {
            let load = rng.uniform(0.3, 1.0);
            let saas = (saas_mask >> (i % 8)) & 1 == 1;
            let vm = Vm {
                id: VmId(i as u64),
                kind: if saas {
                    VmKind::Saas { endpoint: EndpointId(0) }
                } else {
                    VmKind::Iaas { customer: IaasCustomerId(0) }
                },
                arrival: SimTime::ZERO,
                lifetime: SimDuration::from_days(7),
            };
            let request = PlacementRequest { vm, predicted_peak_load: load };
            let chosen = policy.place(&request, &state, &layout, &profiles);
            let server = chosen.expect("free servers remain");
            assert!(state.is_free(server), "case {case}: server {server} occupied");
            state.place(vm, server, load, None).expect("placement on a free server");
        }
        assert_eq!(state.placed_count(), vm_count, "case {case}");
    }
}

/// The analytic LLM performance model is consistent for every configuration in the sweep:
/// goodput positive, decode slower with longer contexts, prefill slower at lower clocks.
#[test]
fn perf_model_is_consistent() {
    let perf = PerfModel::new(GpuHardware::a100());
    let mut rng = SimRng::seed_from(104).derive("perf-cases");
    for case in 0..CASES {
        let config = InstanceConfig {
            variant: ModelVariant::new(
                ModelSize::ALL[rng.uniform_usize(0, 3)],
                Quantization::ALL[rng.uniform_usize(0, 3)],
            ),
            parallelism: TensorParallelism::ALL[rng.uniform_usize(0, 3)],
            max_batch_size: rng.uniform_usize(1, 64),
            frequency: FrequencyScale::new(rng.uniform(0.55, 1.0)),
        };
        assert!(perf.goodput_tokens_per_s(&config) > 0.0, "case {case}");
        assert!(
            perf.decode_step_time_s(&config, config.max_batch_size, 2000)
                >= perf.decode_step_time_s(&config, config.max_batch_size, 500),
            "case {case}: decode must slow down with context length"
        );
        let slower =
            InstanceConfig { frequency: FrequencyScale::new(config.frequency.value() * 0.8), ..config };
        assert!(
            perf.prefill_time_s(&slower, 512) > perf.prefill_time_s(&config, 512) * 0.99,
            "case {case}: prefill must slow down at lower clocks"
        );
        let targets = perf.slo_targets(&config);
        assert!(targets.ttft_s > perf.ttft_unloaded_s(&config), "case {case}");
    }
}

/// Profiled configurations always stay below the DGX A100 server TDP and keep quality in
/// (0, 1], for any point of the configuration space that fits in memory.
#[test]
fn profiles_respect_hardware_envelope() {
    let gpu = GpuHardware::a100();
    let mut rng = SimRng::seed_from(105).derive("profile-cases");
    let mut checked = 0usize;
    while checked < CASES {
        let config = InstanceConfig {
            variant: ModelVariant::new(
                ModelSize::ALL[rng.uniform_usize(0, 3)],
                Quantization::ALL[rng.uniform_usize(0, 3)],
            ),
            parallelism: TensorParallelism::ALL[rng.uniform_usize(0, 3)],
            max_batch_size: InstanceConfig::BATCH_SIZES[rng.uniform_usize(0, 3)],
            frequency: FrequencyScale::new(FrequencyScale::STEPS[rng.uniform_usize(0, 4)]),
        };
        if !config.fits_in_memory(gpu.memory_capacity_gb) {
            continue;
        }
        checked += 1;
        let profile = ConfigProfile::build(&config, &gpu);
        assert!(profile.prefill.server_power.value() <= 6.5 + 1e-9, "{config}");
        assert!(profile.decode.server_power.value() <= 6.5 + 1e-9, "{config}");
        assert!(profile.quality > 0.0 && profile.quality <= 1.0, "{config}");
        assert!(profile.prefill.gpu_power.value() <= 400.0 + 1e-9, "{config}");
    }
}

/// The dense, index-based [`ClusterState`] must agree with a naive `BTreeMap` reference
/// model over any randomized sequence of place/retire/reconfigure operations: same
/// occupancy, same `VmId → server` mapping, same ordered free list, same per-row mix and
/// the same per-endpoint instance membership.
#[test]
fn dense_state_matches_btreemap_reference_model() {
    use std::collections::BTreeMap;

    #[derive(Clone)]
    struct RefEntry {
        server: ServerId,
        kind: VmKind,
        config: Option<InstanceConfig>,
    }

    let layout = LayoutConfig::small_test_cluster().build();
    let mut rng = SimRng::seed_from(106).derive("state-model-cases");
    for case in 0..CASES {
        let mut dense = tapas::state::ClusterState::with_layout(&layout);
        let mut reference: BTreeMap<VmId, RefEntry> = BTreeMap::new();
        let mut next_vm: u64 = 0;
        for _op in 0..200 {
            match rng.uniform_usize(0, 3) {
                // Place a new VM on a random free server.
                0 => {
                    let free = dense.free_servers();
                    if free.is_empty() {
                        continue;
                    }
                    let server = free[rng.uniform_usize(0, free.len())];
                    let saas = rng.chance(0.5);
                    let kind = if saas {
                        VmKind::Saas { endpoint: EndpointId(rng.next_u64() % 3) }
                    } else {
                        VmKind::Iaas { customer: IaasCustomerId(0) }
                    };
                    let vm = Vm {
                        id: VmId(next_vm),
                        kind,
                        arrival: SimTime::ZERO,
                        lifetime: SimDuration::from_days(7),
                    };
                    next_vm += 1;
                    let config = saas.then(InstanceConfig::default_70b);
                    dense.place(vm, server, 0.8, config).expect("free server");
                    reference.insert(vm.id, RefEntry { server, kind, config });
                }
                // Retire a random placed VM.
                1 => {
                    if reference.is_empty() {
                        continue;
                    }
                    let victim = *reference
                        .keys()
                        .nth(rng.uniform_usize(0, reference.len()))
                        .expect("non-empty");
                    let removed = dense.remove(victim).expect("placed in both models");
                    let expected = reference.remove(&victim).expect("placed in both models");
                    assert_eq!(removed.server, expected.server, "case {case}");
                }
                // Reconfigure a random SaaS VM.
                _ => {
                    let saas: Vec<VmId> = reference
                        .iter()
                        .filter(|(_, e)| matches!(e.kind, VmKind::Saas { .. }))
                        .map(|(&id, _)| id)
                        .collect();
                    if saas.is_empty() {
                        continue;
                    }
                    let vm = saas[rng.uniform_usize(0, saas.len())];
                    let config = InstanceConfig::small_fallback();
                    dense.set_config(vm, config).expect("placed");
                    reference.get_mut(&vm).expect("placed").config = Some(config);
                }
            }

            // Full agreement check after every mutation.
            assert_eq!(dense.placed_count(), reference.len(), "case {case}");
            for (&vm, entry) in &reference {
                assert_eq!(dense.server_of(vm), Some(entry.server), "case {case}");
                let placed = dense.vm_on(entry.server).expect("occupied");
                assert_eq!(placed.vm.id, vm, "case {case}");
                assert_eq!(placed.config, entry.config, "case {case}");
            }
            let expected_free: Vec<ServerId> = (0..layout.server_count())
                .map(ServerId::new)
                .filter(|s| !reference.values().any(|e| e.server == *s))
                .collect();
            assert_eq!(dense.free_servers(), expected_free, "case {case}");
            for row in layout.rows() {
                let mut iaas = 0;
                let mut saas = 0;
                for entry in reference.values() {
                    if layout.server(entry.server).row == row.id {
                        match entry.kind {
                            VmKind::Iaas { .. } => iaas += 1,
                            VmKind::Saas { .. } => saas += 1,
                        }
                    }
                }
                assert_eq!(dense.row_mix(&layout, row.id), (iaas, saas), "case {case}");
            }
            for endpoint in 0..3u64 {
                let expected: Vec<VmId> = reference
                    .iter()
                    .filter(|(_, e)| e.kind.endpoint() == Some(EndpointId(endpoint)))
                    .map(|(&id, _)| id)
                    .collect();
                let mut actual: Vec<VmId> =
                    dense.endpoint_instances(EndpointId(endpoint)).to_vec();
                actual.sort_unstable();
                assert_eq!(actual, expected, "case {case}");
            }
        }
    }
}

/// Two simulator runs with the same seed must produce byte-identical serialized reports —
/// the determinism contract the indexed hot path and the `parallel` feature must preserve.
#[test]
fn seeded_runs_serialize_identically() {
    let run = || {
        let mut config = ExperimentConfig::small_smoke_test();
        config.policy = Policy::Tapas;
        ClusterSimulator::new(config).run()
    };
    let a = serde_json::to_string(&run()).expect("serialize");
    let b = serde_json::to_string(&run()).expect("serialize");
    assert_eq!(a, b, "same seed must yield byte-identical reports");
}

/// Deterministic cross-crate check: the cluster state retires VMs exactly at their departure
/// and placement never exceeds the server count (spans the whole arrival generator).
#[test]
fn arrival_stream_fits_the_cluster() {
    let layout = LayoutConfig::small_test_cluster().build();
    let dc = Datacenter::new(layout.clone(), 5);
    let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
    let catalog = workload::endpoints::EndpointCatalog::evaluation(2, 10.0, 5);
    let mut generator = workload::arrivals::VmArrivalGenerator::new(
        workload::arrivals::ArrivalConfig {
            saas_fraction: 0.5,
            initial_population: 6,
            arrivals_per_day: 4.0,
            iaas_customers: 5,
            horizon: SimTime::from_days(2),
        },
        5,
    );
    let policy = TapasPlacement::default();
    let mut state = ClusterState::new(layout.server_count());
    let mut placed = 0;
    for vm in generator.generate(&catalog) {
        state.retire_expired(vm.arrival);
        let request = PlacementRequest { vm, predicted_peak_load: 0.8 };
        if let Some(server) = policy.place(&request, &state, &layout, &profiles) {
            assert!(server.index() < layout.server_count());
            state.place(vm, server, 0.8, None).unwrap();
            placed += 1;
        }
    }
    assert!(placed >= 6, "at least the initial population fits");
    assert!(state.placed_count() <= layout.server_count());
}
