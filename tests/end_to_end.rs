//! Cross-crate integration tests: end-to-end simulations exercising the whole stack
//! (workload generation → placement → routing → reconfiguration → datacenter physics →
//! metrics) and the headline orderings the paper reports.

use tapas_repro::prelude::*;

/// The real-cluster hour (Fig. 18 shape): TAPAS must not worsen the power peak, and must keep
/// quality within the SLO.
#[test]
fn tapas_reduces_peak_row_power_on_the_real_cluster_hour() {
    let baseline =
        ClusterSimulator::new(ExperimentConfig::real_cluster_hour(Policy::Baseline)).run();
    let tapas = ClusterSimulator::new(ExperimentConfig::real_cluster_hour(Policy::Tapas)).run();

    assert!(
        tapas.peak_row_power_kw() <= baseline.peak_row_power_kw() * 1.005,
        "TAPAS peak row power ({:.1} kW) should not exceed the Baseline's ({:.1} kW)",
        tapas.peak_row_power_kw(),
        baseline.peak_row_power_kw()
    );
    assert!(
        tapas.peak_temperature_c() <= baseline.peak_temperature_c() + 1.0,
        "TAPAS must not run meaningfully hotter than the Baseline"
    );
    // Quality stays within the endpoint SLO under normal operation (§5.2: "without hurting
    // result quality").
    assert!(tapas.mean_quality() >= 0.85, "quality {:.3}", tapas.mean_quality());
    assert!(baseline.requests_served > 0 && tapas.requests_served > 0);
}

/// The ablation ordering at the 50/50 mix (Fig. 20): full TAPAS is at least as good as the
/// Baseline on both peaks, and no partial policy beats full TAPAS by a meaningful margin.
#[test]
fn ablation_ordering_holds_on_the_medium_cluster() {
    let mut config = ExperimentConfig::medium(Policy::Baseline);
    config.duration = SimTime::from_hours(24);
    let baseline = ClusterSimulator::new(config.clone()).run();

    let mut tapas_config = config.clone();
    tapas_config.policy = Policy::Tapas;
    let tapas = ClusterSimulator::new(tapas_config).run();

    let mut place_config = config;
    place_config.policy = Policy::Place;
    let place = ClusterSimulator::new(place_config).run();

    // Peak power: TAPAS and its placement mechanism must not be meaningfully worse than the
    // Baseline (the reductions themselves are modest on this two-row quick configuration).
    assert!(tapas.peak_row_power_kw() <= baseline.peak_row_power_kw() * 1.05);
    assert!(place.peak_row_power_kw() <= baseline.peak_row_power_kw() * 1.05);
    // Peak temperature: thermal-aware placement is the reliable win and must show up.
    assert!(tapas.peak_temperature_c() <= baseline.peak_temperature_c() * 1.005);
    assert!(place.peak_temperature_c() <= baseline.peak_temperature_c() * 1.005);
}

/// A power emergency injected mid-run must produce capping events under the Baseline and the
/// simulation must remain stable under both policies.
#[test]
fn power_emergency_is_survivable() {
    for policy in [Policy::Baseline, Policy::Tapas] {
        let mut config = ExperimentConfig::medium(policy);
        config.duration = SimTime::from_hours(8);
        config.failures = FailureSchedule::none()
            .with_power_emergency(SimTime::from_hours(3), SimTime::from_hours(5));
        let report = ClusterSimulator::new(config).run();
        assert_eq!(report.max_gpu_temp.len(), 8 * 6 + 1);
        assert!(report.peak_temperature_c() < 120.0, "temperatures must stay physical");
        assert!(report.mean_quality() > 0.5);
    }
}

/// The profile store fitted by offline profiling must agree with the ground-truth datacenter
/// models it profiled (the paper's < 1 °C MAE claim), across the full production layout.
#[test]
fn offline_profiling_matches_ground_truth_at_scale() {
    let dc = Datacenter::new(LayoutConfig::production_datacenter().build(), 3);
    let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
    assert_eq!(profiles.server_count(), dc.layout().server_count());

    let mut worst_error: f64 = 0.0;
    for server in dc.layout().servers().iter().step_by(97) {
        for inlet in [18.0, 26.0, 34.0] {
            for power in [100.0, 350.0, 550.0] {
                let truth = (0..8)
                    .map(|slot| {
                        dc.gpu_model()
                            .temperatures(
                                dc_sim::ids::GpuId::new(server.id, slot),
                                Celsius::new(inlet),
                                Watts::new(power),
                                0.5,
                            )
                            .gpu
                            .value()
                    })
                    .fold(f64::MIN, f64::max);
                let predicted = profiles
                    .server(server.id)
                    .predicted_worst_gpu_temp(Celsius::new(inlet), Watts::new(power))
                    .value();
                worst_error = worst_error.max((truth - predicted).abs());
            }
        }
    }
    assert!(worst_error < 1.5, "worst-case fitted error {worst_error} °C");
}

/// Reports are serializable (the bench harnesses persist them as JSON for EXPERIMENTS.md).
#[test]
fn run_reports_round_trip_through_json() {
    let report = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
    let json = serde_json::to_string(&report).expect("serialize");
    let back: RunReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.policy, report.policy);
    assert_eq!(back.max_gpu_temp.len(), report.max_gpu_temp.len());
}
