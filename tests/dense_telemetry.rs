//! Property tests pinning the dense, topology-ordinal telemetry shapes to naive
//! `BTreeMap`-based reference models across randomized layouts — the same pattern as the
//! registry-vs-BTreeMap state-model test of the indexed hot path PR.
//!
//! Offline environment note: instead of proptest these cases are driven from a seeded
//! [`simkit::rng::SimRng`] stream, so every case is deterministic and reproducible from
//! the printed case number.

use dc_sim::engine::{Datacenter, ServerActivity, StepInput};
use dc_sim::ids::{GpuId, PduId, RowId, ServerId, UpsId};
use dc_sim::power::hierarchy::{CapacityState, PowerHierarchy};
use dc_sim::topology::{Layout, LayoutConfig, ServerSpec};
use simkit::rng::SimRng;
use simkit::units::{Celsius, Kilowatts};
use std::collections::BTreeMap;

const CASES: usize = 16;

/// Draws a randomized (but always valid) layout configuration.
fn random_layout(rng: &mut SimRng) -> Layout {
    let spec = if rng.chance(0.5) {
        ServerSpec::dgx_a100()
    } else {
        ServerSpec::dgx_h100()
    };
    LayoutConfig {
        aisles: rng.uniform_usize(1, 5),
        racks_per_row: rng.uniform_usize(1, 5),
        servers_per_rack: rng.uniform_usize(1, 4),
        server_spec: spec,
        row_power_provisioning: rng.uniform(0.5, 1.1),
        aisle_airflow_provisioning: rng.uniform(0.6, 1.1),
        pdu_power_provisioning: rng.uniform(0.8, 1.05),
        ups_power_provisioning: rng.uniform(0.8, 1.05),
        pdus_per_ups: rng.uniform_usize(1, 4),
        ahus_per_aisle: rng.uniform_usize(1, 5),
    }
    .build()
}

/// The pre-refactor `BTreeMap`-shaped hierarchy assessment, reimplemented as an
/// independent reference model.
struct ReferenceAssessment {
    rows: BTreeMap<RowId, (f64, f64)>,
    pdus: BTreeMap<PduId, (f64, f64)>,
    upses: BTreeMap<UpsId, (f64, f64)>,
    datacenter: (f64, f64),
    caps: BTreeMap<ServerId, f64>,
}

fn reference_assess(
    layout: &Layout,
    server_power: &[Kilowatts],
    capacity: &CapacityState,
) -> ReferenceAssessment {
    let mut rows = BTreeMap::new();
    for row in layout.rows() {
        let draw: f64 = row.servers.iter().map(|s| server_power[s.index()].value()).sum();
        rows.insert(row.id, (draw, row.power_budget.value() * capacity.row(row.id)));
    }
    let mut pdus = BTreeMap::new();
    for pdu in layout.pdus() {
        let draw: f64 = pdu.rows.iter().map(|r| rows[r].0).sum();
        pdus.insert(pdu.id, (draw, pdu.power_budget.value()));
    }
    let mut upses = BTreeMap::new();
    let mut dc_draw = 0.0;
    for ups in layout.upses() {
        let draw: f64 = ups.pdus.iter().map(|p| pdus[p].0).sum();
        dc_draw += draw;
        upses.insert(ups.id, (draw, ups.power_budget.value() * capacity.ups(ups.id)));
    }
    let datacenter = (
        dc_draw,
        layout.datacenter_power_budget().value() * capacity.datacenter_capacity,
    );

    let over = |&(draw, budget): &(f64, f64)| {
        let utilization = if budget > 0.0 { draw / budget } else { f64::INFINITY };
        (utilization > 1.0).then_some(1.0 / utilization)
    };
    let mut caps: BTreeMap<ServerId, f64> = BTreeMap::new();
    let apply = |caps: &mut BTreeMap<ServerId, f64>, servers: &[ServerId], f: f64| {
        for &s in servers {
            let entry = caps.entry(s).or_insert(1.0);
            *entry = entry.min(f);
        }
    };
    for row in layout.rows() {
        if let Some(fraction) = over(&rows[&row.id]) {
            apply(&mut caps, &row.servers, fraction);
        }
    }
    for pdu in layout.pdus() {
        if let Some(fraction) = over(&pdus[&pdu.id]) {
            for row in &pdu.rows {
                apply(&mut caps, &layout.row(*row).servers, fraction);
            }
        }
    }
    for ups in layout.upses() {
        if let Some(fraction) = over(&upses[&ups.id]) {
            for pdu in &ups.pdus {
                for row in &layout.pdus()[pdu.index()].rows {
                    apply(&mut caps, &layout.row(*row).servers, fraction);
                }
            }
        }
    }
    if let Some(fraction) = over(&datacenter) {
        for row in layout.rows() {
            apply(&mut caps, &row.servers, fraction);
        }
    }
    caps.retain(|_, &mut f| f < 1.0);
    ReferenceAssessment { rows, pdus, upses, datacenter, caps }
}

/// The dense `PowerAssessment` must agree bitwise with the `BTreeMap` reference model for
/// any randomized layout, load pattern and capacity state.
#[test]
fn dense_assessment_matches_btreemap_reference_model() {
    let mut rng = SimRng::seed_from(2024).derive("dense-hierarchy-cases");
    for case in 0..CASES {
        let layout = random_layout(&mut rng);
        let hierarchy = PowerHierarchy::from_layout(&layout);
        let server_power: Vec<Kilowatts> = (0..layout.server_count())
            .map(|_| Kilowatts::new(rng.uniform(0.5, 11.0)))
            .collect();
        let mut capacity = CapacityState::healthy();
        if rng.chance(0.5) {
            capacity.datacenter_capacity = rng.uniform(0.5, 1.0);
        }
        if rng.chance(0.5) {
            let ups = UpsId::new(rng.uniform_usize(0, layout.upses().len()));
            capacity.set_ups_capacity(ups, rng.uniform(0.4, 1.0));
        }
        if rng.chance(0.5) {
            let row = RowId::new(rng.uniform_usize(0, layout.rows().len()));
            capacity.set_row_capacity(row, rng.uniform(0.4, 1.0));
        }

        let dense = hierarchy.assess(&server_power, &capacity);
        let reference = reference_assess(&layout, &server_power, &capacity);

        assert_eq!(dense.rows.len(), reference.rows.len(), "case {case}");
        for (row, utilization) in dense.rows.iter() {
            let &(draw, budget) = &reference.rows[&row];
            assert_eq!(utilization.draw.value(), draw, "case {case} row {row}");
            assert_eq!(utilization.budget.value(), budget, "case {case} row {row}");
        }
        for (pdu, utilization) in dense.pdus.iter() {
            let &(draw, budget) = &reference.pdus[&pdu];
            assert_eq!(utilization.draw.value(), draw, "case {case} pdu {pdu}");
            assert_eq!(utilization.budget.value(), budget, "case {case} pdu {pdu}");
        }
        for (ups, utilization) in dense.upses.iter() {
            let &(draw, budget) = &reference.upses[&ups];
            assert_eq!(utilization.draw.value(), draw, "case {case} ups {ups}");
            assert_eq!(utilization.budget.value(), budget, "case {case} ups {ups}");
        }
        assert_eq!(dense.datacenter.draw.value(), reference.datacenter.0, "case {case}");
        assert_eq!(dense.datacenter.budget.value(), reference.datacenter.1, "case {case}");

        let dense_caps: BTreeMap<ServerId, f64> = dense
            .capping
            .iter()
            .map(|c| (c.server, c.power_fraction))
            .collect();
        assert_eq!(dense_caps.len(), dense.capping.len(), "case {case}: one cap per server");
        assert_eq!(dense_caps, reference.caps, "case {case}");
        assert_eq!(
            dense.any_over_budget(),
            !reference.caps.is_empty(),
            "case {case}"
        );
    }
}

/// The flat `TempGrid` must agree bitwise with per-GPU calls into the thermal model, and
/// the dense aisle grid with direct aisle assessments, for randomized layouts and
/// per-GPU activity.
#[test]
fn temp_grid_and_aisle_grid_match_reference_models() {
    if dc_sim::engine::WIDE_KERNELS {
        return; // AVX2+FMA builds are excluded from bitwise contracts.
    }
    let mut rng = SimRng::seed_from(2025).derive("dense-grid-cases");
    for case in 0..CASES {
        let layout = random_layout(&mut rng);
        let dc = Datacenter::new(layout, rng.next_u64());
        let outside = Celsius::new(rng.uniform(-5.0, 45.0));
        let mut input = StepInput::idle(dc.layout(), outside);
        let servers: Vec<ServerActivity> = dc
            .layout()
            .servers()
            .iter()
            .map(|server| ServerActivity {
                gpu_utilization: (0..server.spec.gpus_per_server)
                    .map(|_| rng.uniform(0.0, 1.0))
                    .collect(),
                frequency_scale: (0..server.spec.gpus_per_server)
                    .map(|_| rng.uniform(0.5, 1.0))
                    .collect(),
                memory_boundedness: rng.uniform(0.0, 1.0),
            })
            .collect();
        input.activity = dc_sim::engine::ActivityPlanes::from_servers(&servers);
        let outcome = dc.evaluate(&input);

        // Reference: the jagged pre-refactor shape, rebuilt from first-principles model
        // calls (per-GPU power from the power model, temperatures from the thermal model).
        assert_eq!(outcome.gpu_temps.server_count(), dc.layout().server_count());
        for server in dc.layout().servers() {
            let activity = input.activity.server(server.id.index());
            let inlet = outcome.inlet_temps[server.id.index()];
            let grid_row = outcome.gpu_temps.server(server.id);
            assert_eq!(grid_row.len(), server.spec.gpus_per_server, "case {case}");
            for (slot, actual) in grid_row.iter().enumerate() {
                let power = dc.power_model().gpu_power(
                    &server.spec,
                    activity.gpu_utilization[slot],
                    activity.frequency_scale[slot],
                );
                let expected = dc.gpu_model().temperatures(
                    GpuId::new(server.id, slot),
                    inlet,
                    power,
                    activity.memory_boundedness,
                );
                assert_eq!(
                    actual, expected,
                    "case {case} server {} slot {slot}",
                    server.id
                );
                assert_eq!(
                    outcome.gpu_temps.get(GpuId::new(server.id, slot)),
                    expected,
                    "case {case}"
                );
            }
        }

        let mut reference_aisles = BTreeMap::new();
        for aisle in dc.layout().aisles() {
            let assessment = dc.airflow_model().assess_aisle(
                aisle,
                |s| outcome.server_airflow[s.index()],
                1.0,
            );
            reference_aisles.insert(aisle.id, assessment);
        }
        assert_eq!(outcome.aisle_airflow.len(), reference_aisles.len(), "case {case}");
        for (aisle, assessment) in outcome.aisle_airflow.iter() {
            assert_eq!(assessment, &reference_aisles[&aisle], "case {case} aisle {aisle}");
        }
    }
}

/// The dense telemetry shapes must survive a serde round trip unchanged (they are part of
/// the serialized telemetry surface the determinism digest covers).
#[test]
fn step_outcome_round_trips_through_serde() {
    let dc = Datacenter::new(LayoutConfig::small_test_cluster().build(), 9);
    let outcome = dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(32.0), 0.9));
    let json = serde_json::to_string(&outcome).expect("serialize outcome");
    let back: dc_sim::engine::StepOutcome = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, outcome);
    let json_again = serde_json::to_string(&back).expect("serialize again");
    assert_eq!(json, json_again, "serialization must be deterministic");
}
