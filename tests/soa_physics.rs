//! Property tests pinning the structure-of-arrays, row-batched physics kernels bitwise
//! to the retained scalar reference implementation (`dc_sim::kernel_reference`) — the
//! executable form of the engine's FP-order contract, in the same driven-from-a-seeded-rng
//! shape as `tests/dense_telemetry.rs`.
//!
//! Cases deliberately cover both kernel paths:
//! * spec-homogeneous rows (the layout builder's output — the hoisted fast path), and
//! * mixed-spec / ragged-GPU-count rows built via `Layout::map_server_specs` (the general
//!   per-server path),
//!
//! across climates from freezing to heatwave, load levels from idle to saturated (with
//! out-of-range utilization exercising the clamps), DVFS'd frequencies, and failure
//! states that trigger recirculation penalties and power capping.

use dc_sim::engine::{ActivityPlanes, Datacenter, ServerActivity, StepInput, StepWorkspace};
use dc_sim::failures::FailureSchedule;
use dc_sim::kernel_reference::evaluate_scalar;
use dc_sim::topology::{Layout, LayoutConfig, ServerSpec};
use simkit::rng::SimRng;
use simkit::time::SimTime;
use simkit::units::Celsius;
use std::sync::Arc;

const CASES: usize = 24;

/// Draws a randomized (but always valid) layout, sometimes remapped to mixed specs and
/// ragged GPU counts so the general kernel path is exercised.
fn random_layout(rng: &mut SimRng) -> Layout {
    let spec = if rng.chance(0.5) {
        ServerSpec::dgx_a100()
    } else {
        ServerSpec::dgx_h100()
    };
    let layout = LayoutConfig {
        aisles: rng.uniform_usize(1, 5),
        racks_per_row: rng.uniform_usize(1, 5),
        servers_per_rack: rng.uniform_usize(1, 4),
        server_spec: spec,
        row_power_provisioning: rng.uniform(0.5, 1.1),
        aisle_airflow_provisioning: rng.uniform(0.6, 1.1),
        pdu_power_provisioning: rng.uniform(0.8, 1.05),
        ups_power_provisioning: rng.uniform(0.8, 1.05),
        pdus_per_ups: rng.uniform_usize(1, 4),
        ahus_per_aisle: rng.uniform_usize(1, 5),
    }
    .build();
    if rng.chance(0.5) {
        // Remap to a mixed fleet: alternate specs per rack and make some GPU counts
        // ragged, so some (usually all) rows lose spec homogeneity.
        let mut choices = Vec::new();
        for _ in 0..4 {
            let mut s = if rng.chance(0.5) {
                ServerSpec::dgx_a100()
            } else {
                ServerSpec::dgx_h100()
            };
            if rng.chance(0.4) {
                s.gpus_per_server = rng.uniform_usize(1, 9);
            }
            choices.push(s);
        }
        layout.map_server_specs(|server| choices[server.rack.index() % choices.len()])
    } else {
        layout
    }
}

fn random_input(rng: &mut SimRng, dc: &Datacenter, outside: Celsius) -> StepInput {
    let mut input = StepInput::idle(dc.layout(), outside);
    // Built through the legacy per-server shape and the compat constructor, so every case
    // also pins `ActivityPlanes::from_servers` against the in-place plane writers below.
    let servers: Vec<ServerActivity> = dc
        .layout()
        .servers()
        .iter()
        .map(|server| ServerActivity {
            // Occasionally out of range, so the kernel clamps are pinned too.
            gpu_utilization: (0..server.spec.gpus_per_server)
                .map(|_| rng.uniform(-0.1, 1.3))
                .collect(),
            frequency_scale: (0..server.spec.gpus_per_server)
                .map(|_| rng.uniform(0.4, 1.0))
                .collect(),
            memory_boundedness: rng.uniform(0.0, 1.0),
        })
        .collect();
    input.activity = ActivityPlanes::from_servers(&servers);
    if rng.chance(0.3) {
        let schedule = if rng.chance(0.5) {
            FailureSchedule::none().with_thermal_emergency(SimTime::ZERO, SimTime::from_hours(2))
        } else {
            FailureSchedule::none().with_power_emergency(SimTime::ZERO, SimTime::from_hours(2))
        };
        input.failures = schedule.state_at(SimTime::from_minutes(30));
    }
    input
}

/// The batched engine must agree bitwise with the scalar reference — structurally
/// (`PartialEq` over every grid) and on the serialized telemetry surface the determinism
/// digests cover.
#[test]
fn batched_kernels_match_scalar_reference_bitwise() {
    if dc_sim::engine::WIDE_KERNELS {
        // The AVX2+FMA lane fuses rounding and reduces four accumulator lanes, so it is
        // explicitly excluded from the bitwise contract (see docs/architecture.md);
        // `wide_kernels_stay_close_to_reference` covers that build instead.
        return;
    }
    let mut rng = SimRng::seed_from(4242).derive("soa-physics-cases");
    for case in 0..CASES {
        let layout = random_layout(&mut rng);
        let dc = Datacenter::new(layout, rng.next_u64());
        // Freezing, temperate, hot and heatwave outside temperatures; hot cases push GPUs
        // over the throttle limit so the sparse collection pass is exercised.
        let outside = Celsius::new(rng.uniform(-10.0, 48.0));
        let input = random_input(&mut rng, &dc, outside);

        let batched = dc.evaluate(&input);
        let reference = evaluate_scalar(&dc, &input);
        assert_eq!(batched, reference, "case {case}: batched != scalar reference");

        let batched_json = serde_json::to_string(&batched).expect("serialize batched");
        let reference_json = serde_json::to_string(&reference).expect("serialize reference");
        assert_eq!(batched_json, reference_json, "case {case}: serialized forms differ");
    }
}

/// A reused workspace (the simulator's steady-state path) must produce the same outcome
/// as a fresh one for every step of a varied sequence — the poison sweep in debug builds
/// additionally proves every lane is rewritten from scratch each step.
#[test]
fn workspace_reuse_is_bit_identical_across_steps() {
    let mut rng = SimRng::seed_from(77).derive("soa-physics-reuse");
    let layout = random_layout(&mut rng);
    let dc = Datacenter::new(layout, 9);
    let mut reused = StepWorkspace::for_topology(Arc::clone(dc.topology()));
    for step in 0..12 {
        let outside = Celsius::new(-5.0 + 4.5 * step as f64);
        let input = random_input(&mut rng, &dc, outside);
        dc.evaluate_into(&input, &mut reused);
        let fresh = dc.evaluate(&input);
        assert_eq!(reused.outcome, fresh, "step {step}: reused workspace diverged");
    }
}

/// The throttle directives produced by the branch-free scratch-lane collection must be
/// exactly the in-loop-branch ordering: server-major, slot order, one directive per GPU
/// above its limit.
#[test]
fn throttle_collection_order_and_values_are_preserved() {
    let dc = Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42);
    let input = StepInput::uniform_load(dc.layout(), Celsius::new(45.0), 1.0);
    let outcome = dc.evaluate(&input);
    assert!(outcome.throttled_gpu_count() > 0, "heatwave at full load must throttle");
    if !dc_sim::engine::WIDE_KERNELS {
        let reference = evaluate_scalar(&dc, &input);
        assert_eq!(outcome.thermal_throttles, reference.thermal_throttles);
    }
    // Directives arrive sorted by (server, slot) with strictly increasing flat ordinals.
    let flats: Vec<usize> = outcome
        .thermal_throttles
        .iter()
        .map(|t| dc.topology().gpu_flat_index(t.gpu))
        .collect();
    assert!(flats.windows(2).all(|w| w[0] < w[1]), "directives must be in flat GPU order");
}

/// Mixed-spec rows take the general kernel path; a layout remapped so every row stays
/// homogeneous must take the fast path — both agreeing with the reference (differential
/// coverage that the two paths cannot drift apart).
#[test]
fn uniform_and_mixed_rows_agree_with_reference() {
    if dc_sim::engine::WIDE_KERNELS {
        return; // bitwise contract excluded under AVX2+FMA; see module note above.
    }
    let base = LayoutConfig::small_test_cluster().build();
    // Homogeneous H100 remap: still uniform rows, exercising the fast path with a
    // different spec than the builder default.
    let uniform = base.clone().map_server_specs(|_| ServerSpec::dgx_h100());
    // Alternating remap: every row mixes A100 and H100 (2 servers per rack, alternating
    // by server ordinal), forcing the general path; one spec is also ragged.
    let mut ragged = ServerSpec::dgx_h100();
    ragged.gpus_per_server = 4;
    let mixed = base.map_server_specs(|server| {
        if server.id.index() % 2 == 0 {
            ServerSpec::dgx_a100()
        } else {
            ragged
        }
    });
    for (label, layout) in [("uniform", uniform), ("mixed", mixed)] {
        let dc = Datacenter::new(layout, 5);
        for (outside, load) in [(18.0, 0.3), (35.0, 0.95), (46.0, 1.0)] {
            let input = StepInput::uniform_load(dc.layout(), Celsius::new(outside), load);
            let outcome = dc.evaluate(&input);
            let reference = evaluate_scalar(&dc, &input);
            assert_eq!(outcome, reference, "{label} layout at {outside}C load {load}");
        }
    }
}

/// Intra-site sharding must be byte-identical to the serial sweep for *any* thread count:
/// the row sweep is chunked on contiguous row ranges and directives merge in row order,
/// so forcing 1, 2, 3 and 8 threads over a site large enough to activate the parallel
/// path (≥256 servers) must serialize to exactly the same bytes. On default builds the
/// forced limits degrade to the serial path, so this holds trivially; under the
/// `parallel` feature it spawns real scoped threads even on a single-CPU host.
#[test]
fn forced_thread_counts_are_byte_identical() {
    let mut config = LayoutConfig::production_datacenter();
    config.aisles = 4; // 320 servers — past the parallel-activation floor.
    let layout = config.build();
    let dc = Datacenter::new(layout, 11);
    let mut rng = SimRng::seed_from(1313).derive("soa-physics-threads");
    let input = random_input(&mut rng, &dc, Celsius::new(41.0));

    let serial = serde_json::to_string(&dc.evaluate(&input)).expect("serialize serial");
    for threads in [1usize, 2, 3, 8] {
        let mut workspace = StepWorkspace::for_topology(Arc::clone(dc.topology()));
        workspace.set_thread_limit(std::num::NonZeroUsize::new(threads));
        dc.evaluate_into(&input, &mut workspace);
        let sharded =
            serde_json::to_string(&workspace.outcome).expect("serialize sharded");
        assert_eq!(serial, sharded, "{threads}-thread sweep diverged from serial");
    }
}

/// Sanity floor for the opt-in AVX2+FMA lane (and a cheap finiteness check everywhere
/// else): the wide kernels trade bitwise reproducibility for throughput, but they must
/// stay numerically glued to the scalar reference — everything finite, temperatures and
/// power within a tight relative tolerance.
#[test]
fn wide_kernels_stay_close_to_reference() {
    let mut rng = SimRng::seed_from(8888).derive("soa-physics-wide");
    for case in 0..6 {
        let layout = random_layout(&mut rng);
        let dc = Datacenter::new(layout, rng.next_u64());
        let outside = Celsius::new(rng.uniform(-10.0, 48.0));
        let input = random_input(&mut rng, &dc, outside);
        let outcome = dc.evaluate(&input);
        let reference = evaluate_scalar(&dc, &input);
        assert!(outcome.datacenter_load.is_finite(), "case {case}: load not finite");
        let close = |a: f64, b: f64| {
            assert!(a.is_finite(), "case {case}: non-finite value");
            let scale = a.abs().max(b.abs()).max(1.0);
            assert!(
                (a - b).abs() <= 1e-9 * scale,
                "case {case}: {a} vs {b} drifted past 1e-9 relative"
            );
        };
        for (got, want) in outcome.server_power.iter().zip(&reference.server_power) {
            close(got.value(), want.value());
        }
        for (got, want) in outcome.inlet_temps.iter().zip(&reference.inlet_temps) {
            close(got.value(), want.value());
        }
        assert_eq!(
            outcome.thermal_throttles.len(),
            reference.thermal_throttles.len(),
            "case {case}: throttle count drifted"
        );
    }
}
