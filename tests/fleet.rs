//! Fleet-layer integration tests: multi-datacenter simulations with per-site climates,
//! geo-aware arrival splitting, and the equivalences that pin the fleet refactor to the
//! single-datacenter simulator.

use tapas_repro::prelude::*;

/// A 3-site climate-stressed fleet (hot/temperate/cold copies of the real-cluster row
/// pair) used for the geo-routing comparisons: load builds from arrivals over one
/// simulated day while the hot site rides a heatwave, so a geo-oblivious split pushes the
/// hot site over its thermal limit.
fn stress_fleet(geo: GeoPolicy) -> FleetConfig {
    let base = ExperimentConfig::real_cluster_hour(Policy::Baseline)
        .with_duration(SimTime::from_hours(24))
        .with_step(SimDuration::from_minutes(10))
        .with_initial_occupancy(0.15)
        .with_arrivals_per_day(70.0);
    let mut fleet = FleetConfig::evaluation(base, 3).with_geo(geo);
    fleet.sites[0].climate.mean_temp_c = 43.0;
    fleet
}

/// The same climate stress expressed through the scenario API: the hot site keeps its
/// stock climate preset and a scenario heatwave overlays the extra 13 °C that
/// [`stress_fleet`] hard-codes into the climate's mean.
fn overlay_stress_fleet(geo: GeoPolicy) -> FleetConfig {
    let base = ExperimentConfig::real_cluster_hour(Policy::Baseline)
        .with_duration(SimTime::from_hours(24))
        .with_step(SimDuration::from_minutes(10))
        .with_initial_occupancy(0.15)
        .with_arrivals_per_day(70.0)
        .with_scenario(
            Scenario::builder()
                .weather(0, SimTime::ZERO, SimTime::from_hours(24), 13.0)
                .build()
                .expect("valid heatwave scenario"),
        );
    FleetConfig::evaluation(base, 3).with_geo(geo)
}

/// A 3-site fleet whose sites share a climate so only the grid price differentiates
/// them: the scenario pins an all-day price spike on site 0.
fn priced_fleet(geo: GeoPolicy, spike: bool) -> FleetConfig {
    let base = ExperimentConfig::real_cluster_hour(Policy::Baseline)
        .with_climate(Climate::temperate())
        .with_duration(SimTime::from_hours(24))
        .with_step(SimDuration::from_minutes(10))
        .with_initial_occupancy(0.15)
        .with_arrivals_per_day(70.0);
    let mut fleet = FleetConfig::evaluation(base, 3).with_geo(geo);
    for site in &mut fleet.sites {
        site.climate = Climate::temperate();
    }
    fleet.base.climate = fleet.sites[0].climate;
    if spike {
        fleet.base.scenario = Scenario::builder()
            .grid_price_spike(0, SimTime::ZERO, SimTime::from_hours(24), 400.0)
            .build()
            .expect("valid price scenario");
    }
    fleet
}

/// A 3-site fleet with the geo router pinned to site 0 and the single-datacenter arrival
/// stream reproduces the plain `ClusterSimulator` run bit for bit on the pinned site,
/// while the other sites idle.
#[test]
fn pinned_three_site_fleet_is_bit_identical_to_the_single_dc_simulation() {
    let mut fleet_config = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 3)
        .with_geo(GeoPolicy::Pinned(0));
    fleet_config.arrival_scale = 1.0;
    let single_config = fleet_config.site_experiment(0);

    let fleet = FleetSimulator::new(fleet_config).run();
    let single = ClusterSimulator::new(single_config).run();

    let fleet_site = serde_json::to_string(&fleet.sites[0]).expect("serialize");
    let single_run = serde_json::to_string(&single).expect("serialize");
    assert_eq!(fleet_site, single_run, "pinned site must reproduce the single-DC run");
    assert_eq!(fleet.vms_routed[1], 0);
    assert_eq!(fleet.vms_routed[2], 0);
    assert_eq!(fleet.sites[1].requests_served, 0);
}

/// The unpinned geo router shifts VM arrivals toward the coolest / highest-headroom site:
/// under a hot/temperate/cold spread the cold site must receive more VMs than the hot one.
#[test]
fn geo_router_shifts_load_toward_the_coolest_site() {
    let report = FleetSimulator::new(stress_fleet(GeoPolicy::Headroom)).run();
    let routed = &report.vms_routed;
    assert!(
        routed[2] > routed[0],
        "cold site should out-receive the hot site: routed {routed:?}"
    );
    assert!(routed.iter().sum::<u64>() > 0);
}

/// Geo routing must beat the naive round-robin split on at least one recorded stress
/// metric (thermal throttling or power capping) without sacrificing the others.
#[test]
fn geo_routing_beats_round_robin_under_climate_stress() {
    let geo = FleetSimulator::new(stress_fleet(GeoPolicy::Headroom)).run();
    let rr = FleetSimulator::new(stress_fleet(GeoPolicy::RoundRobin)).run();

    let geo_stress = [
        geo.thermal_throttled_minutes(),
        geo.power_capped_minutes(),
        geo.thermal_throttle_events() as f64,
        geo.power_cap_events() as f64,
    ];
    let rr_stress = [
        rr.thermal_throttled_minutes(),
        rr.power_capped_minutes(),
        rr.thermal_throttle_events() as f64,
        rr.power_cap_events() as f64,
    ];
    assert!(
        geo_stress.iter().zip(&rr_stress).any(|(g, r)| g < r),
        "geo routing should strictly improve a stress metric: geo {geo_stress:?} vs rr {rr_stress:?}"
    );
    assert!(
        geo_stress.iter().zip(&rr_stress).all(|(g, r)| g <= r),
        "geo routing must not worsen a stress metric: geo {geo_stress:?} vs rr {rr_stress:?}"
    );
    // The fleet still serves comparable traffic while dodging the stress.
    assert!(geo.total_requests_served() > 0 && rr.total_requests_served() > 0);
    assert!(geo.mean_quality() >= rr.mean_quality() - 0.05);
}

/// The heatwave-overlay scenario reproduces the geo win of the climate-mutation stress
/// fleet through the new API: geo routing must beat round-robin on a stress metric
/// without worsening any, and the cold site must out-receive the overlaid hot site.
#[test]
fn scenario_heatwave_overlay_reproduces_the_geo_win() {
    let geo = FleetSimulator::new(overlay_stress_fleet(GeoPolicy::Headroom)).run();
    let rr = FleetSimulator::new(overlay_stress_fleet(GeoPolicy::RoundRobin)).run();
    assert!(
        geo.vms_routed[2] > geo.vms_routed[0],
        "cold site should out-receive the heatwave site: routed {:?}",
        geo.vms_routed
    );
    let geo_stress = [
        geo.thermal_throttled_minutes(),
        geo.power_capped_minutes(),
        geo.thermal_throttle_events() as f64,
        geo.power_cap_events() as f64,
    ];
    let rr_stress = [
        rr.thermal_throttled_minutes(),
        rr.power_capped_minutes(),
        rr.thermal_throttle_events() as f64,
        rr.power_cap_events() as f64,
    ];
    assert!(
        geo_stress.iter().zip(&rr_stress).any(|(g, r)| g < r),
        "geo routing should strictly improve a stress metric: geo {geo_stress:?} vs rr {rr_stress:?}"
    );
    assert!(
        geo_stress.iter().zip(&rr_stress).all(|(g, r)| g <= r),
        "geo routing must not worsen a stress metric: geo {geo_stress:?} vs rr {rr_stress:?}"
    );
    assert!(geo.mean_quality() >= rr.mean_quality() - 0.05);
}

/// A grid-price spike at one site shifts VM arrivals away under the headroom router's
/// new price signal; a pinned split ignores prices entirely and is bit-identical with
/// and without the spike.
#[test]
fn grid_price_spike_shifts_load_away_under_headroom_routing() {
    let spiked = FleetSimulator::new(priced_fleet(GeoPolicy::Headroom, true)).run();
    let flat = FleetSimulator::new(priced_fleet(GeoPolicy::Headroom, false)).run();
    assert!(
        spiked.vms_routed[0] < flat.vms_routed[0],
        "the spiked site must lose load: spiked {:?} vs flat {:?}",
        spiked.vms_routed,
        flat.vms_routed
    );
    assert!(
        spiked.vms_routed[0] < spiked.vms_routed[1]
            && spiked.vms_routed[0] < spiked.vms_routed[2],
        "the expensive site must receive the least load: {:?}",
        spiked.vms_routed
    );
    // The router only steers on relative price: energy cost drops under the spike
    // compared to splitting the same spike round-robin.
    let spiked_rr = FleetSimulator::new(priced_fleet(GeoPolicy::RoundRobin, true)).run();
    let geo_cost = fleet_energy_cost_usd(&spiked, &priced_fleet(GeoPolicy::Headroom, true));
    let rr_cost =
        fleet_energy_cost_usd(&spiked_rr, &priced_fleet(GeoPolicy::RoundRobin, true));
    assert!(
        geo_cost < rr_cost,
        "price-aware routing must cut energy cost: geo ${geo_cost:.0} vs rr ${rr_cost:.0}"
    );
}

/// A pinned split never consults prices: the run with the spike is bit-identical to the
/// run without it.
#[test]
fn pinned_split_is_unchanged_by_a_price_spike() {
    let spiked = FleetSimulator::new(priced_fleet(GeoPolicy::Pinned(1), true)).run();
    let flat = FleetSimulator::new(priced_fleet(GeoPolicy::Pinned(1), false)).run();
    assert_eq!(spiked.vms_routed, flat.vms_routed);
    assert_eq!(
        serde_json::to_string(&spiked).expect("serialize"),
        serde_json::to_string(&flat).expect("serialize"),
        "a pinned fleet must be bit-identical with and without a price-only scenario"
    );
}

/// The acceptance scenario: heatwave + UPS failure + grid-price spike composed on a
/// 3-site fleet via the builder, run end to end. Price-aware geo routing must beat
/// round-robin on energy cost without worsening throttling or SLO attainment.
#[test]
fn composed_scenario_geo_routing_beats_round_robin_on_cost() {
    let compose = |geo: GeoPolicy| {
        // A loaded fleet (every site starts with a solid instance base) hit by a
        // heatwave and a price spike on site 0 plus a mid-day UPS failure on site 1.
        let base = ExperimentConfig::real_cluster_hour(Policy::Baseline)
            .with_duration(SimTime::from_hours(24))
            .with_step(SimDuration::from_minutes(10))
            .with_initial_occupancy(0.7)
            .with_arrivals_per_day(70.0)
            .with_scenario(
                Scenario::builder()
                    .weather(0, SimTime::ZERO, SimTime::from_hours(24), 13.0)
                    .grid_price_spike(0, SimTime::ZERO, SimTime::from_hours(24), 320.0)
                    .fail_ups(1, SimTime::from_hours(6), SimTime::from_hours(9), 0.75)
                    .build()
                    .expect("valid composed scenario"),
            );
        let fleet = FleetConfig::evaluation(base, 3).with_geo(geo);
        fleet.check().expect("valid fleet");
        fleet
    };
    let geo = FleetSimulator::new(compose(GeoPolicy::Headroom)).run();
    let rr = FleetSimulator::new(compose(GeoPolicy::RoundRobin)).run();

    let geo_cost = fleet_energy_cost_usd(&geo, &compose(GeoPolicy::Headroom));
    let rr_cost = fleet_energy_cost_usd(&rr, &compose(GeoPolicy::RoundRobin));
    assert!(
        geo_cost < rr_cost,
        "geo must be cheaper: geo ${geo_cost:.0} vs rr ${rr_cost:.0}"
    );
    assert!(
        geo.thermal_throttle_events() <= rr.thermal_throttle_events(),
        "geo {} vs rr {} throttle events",
        geo.thermal_throttle_events(),
        rr.thermal_throttle_events()
    );
    assert!(
        geo.power_cap_events() <= rr.power_cap_events(),
        "geo {} vs rr {} cap events",
        geo.power_cap_events(),
        rr.power_cap_events()
    );
    assert!(
        geo.slo_attainment() >= rr.slo_attainment(),
        "geo SLO {} vs rr SLO {}",
        geo.slo_attainment(),
        rr.slo_attainment()
    );
    assert!(geo.total_requests_served() > 0 && rr.total_requests_served() > 0);
}

/// Per-site climates flow through the fleet config into genuinely diverging
/// outside-temperature traces (distinct presets and weather seeds per site).
#[test]
fn site_outside_temperature_traces_diverge() {
    use tapas_repro::dc_sim::weather::WeatherModel;
    let fleet = stress_fleet(GeoPolicy::Headroom);
    let mut traces: Vec<Vec<f64>> = fleet
        .sites
        .iter()
        .map(|site| {
            let mut weather = WeatherModel::new(site.climate, site.seed);
            (0..72)
                .map(|h| weather.outside_temp(SimTime::from_hours(h)).value())
                .collect()
        })
        .collect();
    // Pairwise distinct traces.
    for i in 0..traces.len() {
        for j in (i + 1)..traces.len() {
            assert_ne!(traces[i], traces[j], "sites {i} and {j} share a weather trace");
        }
    }
    // And the climates order the means: hot > temperate > cold.
    let means: Vec<f64> = traces
        .iter_mut()
        .map(|t| t.iter().sum::<f64>() / t.len() as f64)
        .collect();
    assert!(means[0] > means[1] && means[1] > means[2], "means {means:?}");
}
