//! Fleet-layer integration tests: multi-datacenter simulations with per-site climates,
//! geo-aware arrival splitting, and the equivalences that pin the fleet refactor to the
//! single-datacenter simulator.

use tapas_repro::prelude::*;

/// A 3-site climate-stressed fleet (hot/temperate/cold copies of the real-cluster row
/// pair) used for the geo-routing comparisons: load builds from arrivals over one
/// simulated day while the hot site rides a heatwave, so a geo-oblivious split pushes the
/// hot site over its thermal limit.
fn stress_fleet(geo: GeoPolicy) -> FleetConfig {
    let mut base = ExperimentConfig::real_cluster_hour(Policy::Baseline);
    base.duration = SimTime::from_hours(24);
    base.step = SimDuration::from_minutes(10);
    base.initial_occupancy = 0.15;
    base.arrivals_per_day = Some(70.0);
    let mut fleet = FleetConfig::evaluation(base, 3).with_geo(geo);
    fleet.sites[0].climate.mean_temp_c = 43.0;
    fleet
}

/// A 3-site fleet with the geo router pinned to site 0 and the single-datacenter arrival
/// stream reproduces the plain `ClusterSimulator` run bit for bit on the pinned site,
/// while the other sites idle.
#[test]
fn pinned_three_site_fleet_is_bit_identical_to_the_single_dc_simulation() {
    let mut fleet_config = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 3)
        .with_geo(GeoPolicy::Pinned(0));
    fleet_config.arrival_scale = 1.0;
    let single_config = fleet_config.site_experiment(0);

    let fleet = FleetSimulator::new(fleet_config).run();
    let single = ClusterSimulator::new(single_config).run();

    let fleet_site = serde_json::to_string(&fleet.sites[0]).expect("serialize");
    let single_run = serde_json::to_string(&single).expect("serialize");
    assert_eq!(fleet_site, single_run, "pinned site must reproduce the single-DC run");
    assert_eq!(fleet.vms_routed[1], 0);
    assert_eq!(fleet.vms_routed[2], 0);
    assert_eq!(fleet.sites[1].requests_served, 0);
}

/// The unpinned geo router shifts VM arrivals toward the coolest / highest-headroom site:
/// under a hot/temperate/cold spread the cold site must receive more VMs than the hot one.
#[test]
fn geo_router_shifts_load_toward_the_coolest_site() {
    let report = FleetSimulator::new(stress_fleet(GeoPolicy::Headroom)).run();
    let routed = &report.vms_routed;
    assert!(
        routed[2] > routed[0],
        "cold site should out-receive the hot site: routed {routed:?}"
    );
    assert!(routed.iter().sum::<u64>() > 0);
}

/// Geo routing must beat the naive round-robin split on at least one recorded stress
/// metric (thermal throttling or power capping) without sacrificing the others.
#[test]
fn geo_routing_beats_round_robin_under_climate_stress() {
    let geo = FleetSimulator::new(stress_fleet(GeoPolicy::Headroom)).run();
    let rr = FleetSimulator::new(stress_fleet(GeoPolicy::RoundRobin)).run();

    let geo_stress = [
        geo.thermal_throttled_minutes(),
        geo.power_capped_minutes(),
        geo.thermal_throttle_events() as f64,
        geo.power_cap_events() as f64,
    ];
    let rr_stress = [
        rr.thermal_throttled_minutes(),
        rr.power_capped_minutes(),
        rr.thermal_throttle_events() as f64,
        rr.power_cap_events() as f64,
    ];
    assert!(
        geo_stress.iter().zip(&rr_stress).any(|(g, r)| g < r),
        "geo routing should strictly improve a stress metric: geo {geo_stress:?} vs rr {rr_stress:?}"
    );
    assert!(
        geo_stress.iter().zip(&rr_stress).all(|(g, r)| g <= r),
        "geo routing must not worsen a stress metric: geo {geo_stress:?} vs rr {rr_stress:?}"
    );
    // The fleet still serves comparable traffic while dodging the stress.
    assert!(geo.total_requests_served() > 0 && rr.total_requests_served() > 0);
    assert!(geo.mean_quality() >= rr.mean_quality() - 0.05);
}

/// Per-site climates flow through the fleet config into genuinely diverging
/// outside-temperature traces (distinct presets and weather seeds per site).
#[test]
fn site_outside_temperature_traces_diverge() {
    use tapas_repro::dc_sim::weather::WeatherModel;
    let fleet = stress_fleet(GeoPolicy::Headroom);
    let mut traces: Vec<Vec<f64>> = fleet
        .sites
        .iter()
        .map(|site| {
            let mut weather = WeatherModel::new(site.climate, site.seed);
            (0..72)
                .map(|h| weather.outside_temp(SimTime::from_hours(h)).value())
                .collect()
        })
        .collect();
    // Pairwise distinct traces.
    for i in 0..traces.len() {
        for j in (i + 1)..traces.len() {
            assert_ne!(traces[i], traces[j], "sites {i} and {j} share a weather trace");
        }
    }
    // And the climates order the means: hot > temperate > cold.
    let means: Vec<f64> = traces
        .iter_mut()
        .map(|t| t.iter().sum::<f64>() / t.len() as f64)
        .collect();
    assert!(means[0] > means[1] && means[1] > means[2], "means {means:?}");
}
