//! Chaos property tests: generated adversarial scenarios must never panic the
//! simulator, must keep every reported metric finite, and must be bit-reproducible for
//! a fixed seed. The sweep harness (`scenario_sweep`) explores quality under stress;
//! these tests pin the *survival* contract it relies on.
//!
//! Regenerate the pinned generated-scenario artifact after an intentional generator or
//! serde change with: `UPDATE_GOLDEN=1 cargo test --test chaos`.

use tapas_repro::prelude::*;

const GOLDEN_GENERATED: &str = include_str!("golden/generated_scenario.json");

fn single_config(seed: u64, tier: IntensityTier, policy: Policy) -> ExperimentConfig {
    let base = ExperimentConfig::small_smoke_test().with_policy(policy);
    let scenario = generate(
        seed,
        &GeneratorConfig {
            tier,
            sites: 1,
            duration: base.duration,
            endpoints: base.endpoint_count,
        },
    );
    base.with_scenario(scenario)
}

fn fleet_config(seed: u64, tier: IntensityTier) -> FleetConfig {
    let base = ExperimentConfig::small_smoke_test().with_policy(Policy::Tapas);
    let scenario = generate(
        seed,
        &GeneratorConfig {
            tier,
            sites: 3,
            duration: base.duration,
            endpoints: base.endpoint_count,
        },
    );
    FleetConfig::evaluation(base.with_scenario(scenario), 3)
}

fn assert_finite_run(report: &RunReport, label: &str) {
    assert!(report.peak_temperature_c().is_finite(), "{label}: peak temperature");
    assert!(report.peak_row_power_kw().is_finite(), "{label}: peak row power");
    assert!(
        (0.0..=1.0).contains(&report.slo_attainment()),
        "{label}: SLO attainment {}",
        report.slo_attainment()
    );
    assert!(report.mean_quality().is_finite(), "{label}: quality");
    assert!(report.p99_latency_factor().is_finite(), "{label}: latency");
    assert!(
        report.datacenter_power.iter().all(|(_, kw)| kw.is_finite() && kw >= 0.0),
        "{label}: power series"
    );
}

/// 105 generated scenarios — 20 seeds × 3 tiers on a single datacenter (alternating
/// policies) plus 15 seeds × 3 tiers on a 3-site fleet — all run to completion with
/// finite metrics. A panic anywhere fails the test.
#[test]
fn generated_scenarios_run_without_panicking_and_stay_finite() {
    let mut scenarios = 0;
    for tier in IntensityTier::ALL {
        for seed in 0..20 {
            let policy = if seed % 2 == 0 { Policy::Tapas } else { Policy::Baseline };
            let config = single_config(seed, tier, policy);
            let timeline = config.resolved_timeline();
            let report = ClusterSimulator::new(config).run();
            let label = format!("single {tier:?} seed {seed}");
            assert_finite_run(&report, &label);
            let cost = energy_cost_usd(&report, &timeline);
            assert!(cost.is_finite() && cost >= 0.0, "{label}: energy cost {cost}");
            scenarios += 1;
        }
    }
    for tier in IntensityTier::ALL {
        for seed in 100..115 {
            let config = fleet_config(seed, tier);
            let cost_config = config.clone();
            let report = FleetSimulator::new(config).run();
            let label = format!("fleet {tier:?} seed {seed}");
            for site in &report.sites {
                assert_finite_run(site, &label);
            }
            assert!(report.power_capped_minutes().is_finite(), "{label}: capped minutes");
            let cost = fleet_energy_cost_usd(&report, &cost_config);
            assert!(cost.is_finite() && cost >= 0.0, "{label}: energy cost {cost}");
            scenarios += 1;
        }
    }
    assert!(scenarios >= 100, "chaos run covered only {scenarios} scenarios");
}

/// The same seed produces byte-identical serialized reports — generation, resolution and
/// simulation are all deterministic end to end, single-DC and fleet alike.
#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    for (seed, tier) in [(3, IntensityTier::Severe), (7, IntensityTier::Adversarial)] {
        let a = ClusterSimulator::new(single_config(seed, tier, Policy::Tapas)).run();
        let b = ClusterSimulator::new(single_config(seed, tier, Policy::Tapas)).run();
        assert_eq!(
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize"),
            "single-DC seed {seed} diverged"
        );

        let fa = FleetSimulator::new(fleet_config(seed, tier)).run();
        let fb = FleetSimulator::new(fleet_config(seed, tier)).run();
        assert_eq!(
            serde_json::to_string(&fa).expect("serialize"),
            serde_json::to_string(&fb).expect("serialize"),
            "fleet seed {seed} diverged"
        );
    }
}

fn fabric_chaos_config(seed: u64) -> FleetConfig {
    let base = ExperimentConfig::small_smoke_test()
        .with_policy(Policy::Tapas)
        .with_request_fabric(RequestFabricConfig {
            rate_scale: 2.0,
            deadline_shedding: true,
            ..RequestFabricConfig::default()
        });
    let scenario = generate(
        seed,
        &GeneratorConfig {
            tier: IntensityTier::Adversarial,
            sites: 3,
            duration: base.duration,
            endpoints: base.endpoint_count,
        },
    );
    FleetConfig::evaluation(base.with_scenario(scenario), 3)
}

/// Request-lifecycle chaos: a fabric-enabled fleet under generated adversarial
/// scenarios (replica kills included, deadline shedding on) survives with finite
/// metrics, sheds loudly rather than silently, and conserves every request exactly:
/// `arrived == completed + shed + timeouts + in_flight_at_horizon`. Same-seed runs are
/// byte-identical end to end.
#[test]
fn fabric_fleet_survives_generated_chaos_and_conserves_requests() {
    for seed in [11, 12, 13] {
        let report = FleetSimulator::new(fabric_chaos_config(seed)).run();
        let label = format!("fabric chaos seed {seed}");
        for site in &report.sites {
            assert_finite_run(site, &label);
        }
        let metrics = report.request_fabric().expect("every site ran the fabric");
        let lifecycle = metrics.lifecycle;
        assert!(lifecycle.arrived > 0, "{label}: no requests arrived");
        assert_eq!(
            lifecycle.arrived,
            metrics.completed
                + lifecycle.shed
                + lifecycle.timeouts
                + lifecycle.in_flight_at_horizon,
            "{label}: request conservation must hold exactly ({lifecycle:?})"
        );
        let attainment = metrics.attainment_at(5.0);
        assert!(
            (0.0..=1.0).contains(&attainment),
            "{label}: 5x SLO attainment {attainment}"
        );
    }

    let a = FleetSimulator::new(fabric_chaos_config(11)).run();
    let b = FleetSimulator::new(fabric_chaos_config(11)).run();
    assert_eq!(
        serde_json::to_string(&a).expect("serialize"),
        serde_json::to_string(&b).expect("serialize"),
        "fabric chaos fleet diverged for the same seed"
    );
}

/// Pinned golden artifact: the generated scenario for a fixed `(seed, config)` pair
/// serializes to exactly these bytes. Catches accidental drift in the generator's draw
/// order, tier parameters or the scenario serde format.
#[test]
fn golden_generated_scenario_round_trips_byte_for_byte() {
    let scenario = generate(
        7,
        &GeneratorConfig::new(IntensityTier::Adversarial, 3, SimTime::from_days(2)),
    );
    scenario.validate(3).expect("golden generated scenario is valid");
    let json = serde_json::to_string(&scenario).expect("serialize");

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/generated_scenario.json"),
            &json,
        )
        .expect("write golden file");
        return;
    }

    assert_eq!(
        json,
        GOLDEN_GENERATED.trim_end(),
        "generated scenario drifted from the golden file; if the generator change is \
         intentional, regenerate with UPDATE_GOLDEN=1 cargo test --test chaos"
    );
    let back: Scenario = serde_json::from_str(GOLDEN_GENERATED).expect("deserialize golden");
    assert_eq!(back, scenario, "golden file must deserialize to the same scenario");
}
