//! Scenario-layer integration tests: golden-file serde round-trips for a fully loaded
//! 3-site fleet scenario, and backward-compatible deserialization of pre-scenario
//! experiment artifacts.
//!
//! Regenerate the golden file after an intentional format change with:
//! `UPDATE_GOLDEN=1 cargo test --test scenario`.

use tapas_repro::prelude::*;
use tapas_repro::workload::endpoints::EndpointId;

const GOLDEN_FLEET: &str = include_str!("golden/scenario_fleet.json");
const PRE_SCENARIO_EXPERIMENT: &str = include_str!("golden/pre_scenario_experiment.json");

/// The golden 3-site fleet: a heatwave on the hot site, a grid-price curve (base price,
/// a spike at site 1 and a cheap overnight window), a UPS failure at site 2 and demand
/// shaping — every event kind, both site-targeted and fleet-wide.
fn golden_fleet() -> FleetConfig {
    let base = ExperimentConfig::small_smoke_test()
        .with_policy(Policy::Tapas)
        .with_duration(SimTime::from_days(7))
        .with_step(SimDuration::from_minutes(30))
        .with_scenario(
            Scenario::builder()
                .base_grid_price(45.0)
                .heatwave(3..5, 8.0)
                .weather(0, SimTime::from_days(1), SimTime::from_days(2), 5.5)
                .grid_price_spike(1, SimTime::from_days(2), SimTime::from_days(3), 280.0)
                .grid_price(SiteSelector::All, SimTime::ZERO, SimTime::from_hours(6), 22.0)
                .fail_ups(2, SimTime::from_hours(50), SimTime::from_hours(53), 0.75)
                .fail_ahus(0, 1, 1, SimTime::from_hours(60), SimTime::from_hours(62), )
                .surge(SimTime::from_days(4), SimTime::from_days(5), 1.8)
                .endpoint_ramp(EndpointId(1), SimTime::from_days(5), SimTime::from_days(6), 2.5)
                .build()
                .expect("golden scenario is valid"),
        );
    FleetConfig::evaluation(base, 3)
}

#[test]
fn golden_fleet_scenario_round_trips_byte_for_byte() {
    let fleet = golden_fleet();
    fleet.check().expect("golden fleet is valid");
    let json = serde_json::to_string(&fleet).expect("serialize");

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/scenario_fleet.json"), &json)
            .expect("write golden file");
        return;
    }

    assert_eq!(
        json,
        GOLDEN_FLEET.trim_end(),
        "serialized fleet drifted from the golden file; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test scenario"
    );
    let back: FleetConfig = serde_json::from_str(GOLDEN_FLEET).expect("deserialize golden");
    assert_eq!(back, fleet, "golden file must deserialize to the same fleet");
    // Re-serializing the round-tripped value is stable.
    assert_eq!(serde_json::to_string(&back).expect("serialize"), json);
}

#[test]
fn golden_fleet_scenario_resolves_per_site() {
    let fleet = golden_fleet();
    // Site 1 sees the spike during day 2, everyone the cheap overnight window.
    let timeline = fleet.site_timeline(1);
    assert_eq!(timeline.grid_price_at(SimTime::ZERO), 22.0);
    assert_eq!(timeline.grid_price_at(SimTime::from_hours(60)), 280.0);
    assert_eq!(timeline.grid_price_at(SimTime::from_days(3)), 45.0);
    // Only site 2 sees the UPS failure.
    let failing = fleet.site_timeline(2);
    assert!(!failing.failures().state_at(SimTime::from_hours(51)).is_healthy());
    assert!(fleet.site_timeline(0).failures().state_at(SimTime::from_hours(51)).is_healthy());
    // The fleet-wide heatwave reaches every site; the extra site-0 episode only site 0.
    assert_eq!(fleet.site_timeline(2).temp_offset_at(SimTime::from_days(3)), 8.0);
    assert_eq!(fleet.site_timeline(0).temp_offset_at(SimTime::from_days(1)), 5.5);
    assert_eq!(fleet.site_timeline(1).temp_offset_at(SimTime::from_days(1)), 0.0);
}

#[test]
fn pre_scenario_experiment_artifact_still_deserializes() {
    assert!(
        !PRE_SCENARIO_EXPERIMENT.contains("\"scenario\""),
        "the artifact must predate the scenario field"
    );
    let config: ExperimentConfig =
        serde_json::from_str(PRE_SCENARIO_EXPERIMENT).expect("pre-scenario artifact loads");
    // The artifact was serialized (by the pre-scenario code) from this exact preset.
    let mut expected = ExperimentConfig::production_week(Policy::PlaceRoute);
    expected.failures = FailureSchedule::none()
        .with_power_emergency(SimTime::from_hours(3), SimTime::from_hours(5));
    assert_eq!(config, expected);
    // The missing field defaults to the empty scenario: resolved behaviour is legacy.
    assert!(config.scenario.is_empty());
    let report = ClusterSimulator::new(
        config.with_duration(SimTime::from_hours(1)).with_step(SimDuration::from_minutes(10)),
    )
    .run();
    assert!(report.requests_served > 0);
}
